package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// columnTypeOf derives a declared type for a test column: the uniform type
// of its non-NULL cells, or NullType (→ boxed vector) when cells mix.
func columnTypeOf(rows [][]value.Value, s int) value.Type {
	t := value.NullType
	for _, row := range rows {
		c := row[s]
		if c.IsNull() {
			continue
		}
		if t == value.NullType {
			t = c.Type()
		} else if t != c.Type() {
			return value.NullType
		}
	}
	return t
}

// tbatchFromRows transposes row-major test rows into a typed batch:
// uniform columns become native vectors (NULLs in the mask), mixed ones
// fall back to boxed — exactly what FillFromCells guarantees.
func tbatchFromRows(width, capacity int, rows [][]value.Value) *TBatch {
	b := NewTBatch(width, capacity)
	for s := 0; s < width; s++ {
		b.Col(s).FillFromCells(len(rows), columnTypeOf(rows, s), func(i int) value.Value { return rows[i][s] })
	}
	b.SetLen(len(rows))
	return b
}

// typedCompare holds the typed engine to the scalar reference results:
// identical values (and types) per row, the identical first erroring row,
// and Filter agreement — over full batches and every chunking, like the
// boxed comparison in threeWayCompare.
func typedCompare(t *testing.T, src string, layout MapLayout, rows [][]value.Value, want []value.Value, wantErrRow int, wantErr error) {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	width := 0
	for _, s := range layout {
		if s+1 > width {
			width = s + 1
		}
	}
	prog, serr := Compile(e, layout)
	tprog, terr := CompileTyped(e, layout)
	if (serr != nil) != (terr != nil) {
		t.Fatalf("%q: scalar compile err=%v, typed compile err=%v", src, serr, terr)
	}
	if serr != nil {
		return
	}
	if !reflect.DeepEqual(prog.Refs(), tprog.Refs()) {
		t.Errorf("%q: scalar refs %v, typed refs %v", src, prog.Refs(), tprog.Refs())
	}

	for chunk := 1; chunk <= len(rows); chunk++ {
		ev := tprog.NewEval(chunk)
		for off := 0; off < len(rows); off += chunk {
			end := off + chunk
			if end > len(rows) {
				end = len(rows)
			}
			b := tbatchFromRows(width, chunk, rows[off:end])
			got, errRow, err := tprog.EvalVec(ev, b, ev.Seq(b.Len()))
			expErrRow := -1
			if wantErrRow >= off && wantErrRow < end {
				expErrRow = wantErrRow - off
			}
			if (err != nil) != (expErrRow >= 0) || errRow != expErrRow {
				t.Fatalf("%q chunk=%d off=%d: typed errRow=%d err=%v, scalar first error row %d (%v)",
					src, chunk, off, errRow, err, wantErrRow, wantErr)
			}
			limit := end - off
			if expErrRow >= 0 {
				limit = expErrRow
			}
			for i := 0; i < limit; i++ {
				w := want[off+i]
				g := got.ValueAt(i)
				if !value.Equal(w, g) || w.Type() != g.Type() {
					t.Fatalf("%q chunk=%d row %d: scalar=%v (%v), typed=%v (%v)",
						src, chunk, off+i, w, w.Type(), g, g.Type())
				}
			}
			b.Release()
			if wantErrRow >= 0 && wantErrRow < end {
				break
			}
		}
		ev.Release()
	}

	ev := tprog.NewEval(len(rows))
	b := tbatchFromRows(width, len(rows), rows)
	sel, errRow, err := tprog.Filter(ev, b, ev.Seq(len(rows)))
	if (err != nil) != (wantErrRow >= 0) || errRow != wantErrRow {
		t.Fatalf("%q: typed Filter errRow=%d err=%v, want row %d (%v)", src, errRow, err, wantErrRow, wantErr)
	}
	var wantSel []int
	for i := range rows {
		if wantErrRow >= 0 && i >= wantErrRow {
			break
		}
		if want[i].IsTrue() {
			wantSel = append(wantSel, i)
		}
	}
	if !reflect.DeepEqual(append([]int{}, sel...), append([]int{}, wantSel...)) {
		t.Errorf("%q: typed Filter sel=%v, want %v", src, sel, wantSel)
	}
	b.Release()
	ev.Release()
}

// typedRows is a homogeneous-column row set that drives every native
// kernel: int, float (with NaN and infinities), string and bool columns,
// NULL-heavy, plus int64 magnitudes beyond 2^53 where the engines' float
// widening makes distinct integers compare equal.
func typedRows() [][]value.Value {
	const big = int64(1) << 53
	return [][]value.Value{
		{value.String("GALAXY"), value.Float(12.5), value.Float(9), value.Float(-12.25), value.String("NGC 1275"), value.Int(7), value.Int(big)},
		{value.String("STAR"), value.Float(1.5), value.Float(1.25), value.Float(89.9), value.String("M31"), value.Int(0), value.Int(big + 1)},
		{value.Null, value.Null, value.Float(math.NaN()), value.Null, value.Null, value.Int(-1), value.Int(math.MinInt64)},
		{value.String(""), value.Null, value.Float(math.Inf(1)), value.Float(0), value.String("NGC%"), value.Null, value.Null},
		{value.String("QSO"), value.Float(-3), value.Null, value.Float(30), value.String("NGC 42"), value.Int(3), value.Int(4)},
	}
}

var typedExprs = []string{
	"O.type = 'GALAXY'",
	"O.type <> 'STAR' AND O.type < 'Z'",
	"(O.i_flux - T.i_flux) > 2",
	"O.i_flux + T.i_flux >= 10",
	"O.i_flux * 2 / 4 < T.i_flux",
	"x + n", "x - n", "x * n", "x % n", "x / n", "-x", "-O.dec",
	"x = n", "x <> n", "x < n", "x <= n", "x > n", "x >= n",
	// Widening: both sides int64 beyond 2^53 — equal as floats.
	"x = 9007199254740993", "x > 9007199254740992",
	// NaN compares equal to everything in this engine.
	"T.i_flux = 0", "T.i_flux < O.i_flux", "T.i_flux >= 1e308",
	"O.dec BETWEEN -30 AND 30",
	"O.type IN ('GALAXY', 'QSO')",
	"O.type IS NULL", "x IS NOT NULL",
	"NOT (O.i_flux > 2)", "NOT x", "NOT O.type",
	"O.type LIKE 'GAL%'", "name LIKE '%27%'", "name LIKE name", "x LIKE 'x'",
	"ABS(O.dec) < 30.0", "SQRT(O.i_flux) > 1", "FLOOR(O.dec) = -13", "ABS(x) > 0", "ABS(n)",
	"UPPER(name) = 'M31'", "LEN(name) > 3", "POWER(2, n) > 4",
	"COALESCE(O.i_flux, T.i_flux, 0) > 1",
	"O.type = 'GALAXY' AND O.i_flux > 2 AND ABS(O.dec) < 30 AND name LIKE 'NGC%'",
	"O.type = 'GALAXY' OR n > 3 OR x IS NULL",
	"x AND n", "x AND (n AND x)", "x OR (n OR NULL)",
	"n AND (x IS NULL AND NULL)",
	"x > 0 AND 1 / 0 = 1", "FALSE AND 1 / 0 = 1", "TRUE OR 1 / 0 = 1",
	"x % (n - n)", "n / (n - n)",
	"name > 2", "x = name", "-name",
}

func TestTypedMatchesScalarEngines(t *testing.T) {
	for _, rows := range [][][]value.Value{typedRows(), stdRows()} {
		for _, src := range typedExprs {
			e, err := sqlparse.ParseExpr(src)
			if err != nil {
				t.Fatalf("parse %q: %v", src, err)
			}
			prog, serr := Compile(e, stdLayout)
			if serr != nil {
				t.Fatalf("compile %q: %v", src, serr)
			}
			want, wantErrRow, wantErr := scalarRowResults(prog, rows)
			typedCompare(t, src, stdLayout, rows, want, wantErrRow, wantErr)
		}
	}
}

func TestTypedCompileReportsBindingErrors(t *testing.T) {
	cases := []string{
		"nosuch = 1",
		"Q.nosuch = 1",
		"NOSUCHFN(1)",
		"ABS(1, 2)",
		"POWER(1)",
		"FALSE AND nosuch = 1", // dead side still binding-checked
		"TRUE OR nosuch = 1",
	}
	for _, src := range cases {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := CompileTyped(e, stdLayout); err == nil {
			t.Errorf("CompileTyped(%q) succeeded, want error", src)
		}
	}
}

func TestTypedConstantFolding(t *testing.T) {
	e, err := sqlparse.ParseExpr("1 + 2 * 3 = 7 AND 2 < 3")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileTyped(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Refs()) != 0 {
		t.Errorf("constant program references slots %v", p.Refs())
	}
	ev := p.NewEval(4)
	b := NewTBatch(7, 4)
	b.SetLen(3)
	sel, errRow, ferr := p.Filter(ev, b, ev.Seq(3))
	if ferr != nil || errRow != -1 || len(sel) != 3 {
		t.Errorf("constant TRUE filter = %v, %d, %v", sel, errRow, ferr)
	}

	e, err = sqlparse.ParseExpr("1 / 0 = 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err = CompileTyped(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	ev2 := p.NewEval(4)
	if _, errRow, ferr := p.Filter(ev2, b, ev2.Seq(3)); ferr == nil || errRow != 0 {
		t.Errorf("constant error filter: errRow=%d err=%v", errRow, ferr)
	}
	if _, errRow, ferr := p.Filter(ev2, b, ev2.Seq(0)); ferr != nil || errRow != -1 {
		t.Errorf("constant error over empty selection: errRow=%d err=%v", errRow, ferr)
	}
	ev.Release()
	ev2.Release()
}

func TestNilTypedProgram(t *testing.T) {
	p, err := CompileTyped(nil, stdLayout)
	if err != nil {
		t.Fatalf("CompileTyped(nil) = %v", err)
	}
	if p != nil {
		t.Fatal("CompileTyped(nil) returned a program")
	}
	if p.Refs() != nil {
		t.Error("nil program has refs")
	}
	ev := p.NewEval(8)
	b := NewTBatch(2, 8)
	b.SetLen(5)
	sel, errRow, ferr := p.Filter(ev, b, ev.Seq(5))
	if ferr != nil || errRow != -1 || len(sel) != 5 {
		t.Errorf("nil program Filter = %v, %d, %v; want identity", sel, errRow, ferr)
	}
	if _, _, err := p.EvalVec(ev, b, ev.Seq(5)); err == nil {
		t.Error("nil program EvalVec should error")
	}
	ev.Release()
}

func TestTypedUnfilledSlot(t *testing.T) {
	e, err := sqlparse.ParseExpr("x = 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileTyped(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.NewEval(4)
	b := NewTBatch(7, 4) // slot 6 ("x") never filled
	b.SetLen(2)
	if _, errRow, ferr := p.Filter(ev, b, ev.Seq(2)); ferr == nil || errRow != -1 {
		t.Errorf("unfilled slot: errRow=%d err=%v; want structural error with errRow -1", errRow, ferr)
	}
	narrow := NewTBatch(3, 4)
	narrow.SetLen(2)
	if _, _, ferr := p.Filter(ev, narrow, ev.Seq(2)); ferr == nil {
		t.Error("narrow typed batch accepted")
	}
	ev.Release()
}

// TestVectorViewsAndBuffers covers the Vector fill modes directly: views,
// owned buffers, broadcast and the boxed fallback of FillFromCells.
func TestVectorViewsAndBuffers(t *testing.T) {
	var v Vector
	v.SetIntView([]int64{1, 2, 3}, []bool{false, true, false})
	if v.Kind != VecInt || !v.NullAt(1) || v.ValueAt(2).AsInt() != 3 {
		t.Fatalf("int view: %+v", v)
	}
	v.Broadcast(value.String("x"), 4)
	if v.Kind != VecStr || v.ValueAt(3).AsString() != "x" {
		t.Fatalf("broadcast: %+v", v)
	}
	v.Broadcast(value.Null, 2)
	if !v.NullAt(0) || !v.NullAt(1) {
		t.Fatalf("null broadcast: %+v", v)
	}
	// Declared INT but a FLOAT cell arrives: exact boxed fallback.
	cells := []value.Value{value.Int(1), value.Float(2.5), value.Null}
	v.FillFromCells(3, value.IntType, func(i int) value.Value { return cells[i] })
	if v.Kind != VecBoxed {
		t.Fatalf("mixed cells should fall back to boxed, got kind %d", v.Kind)
	}
	for i, c := range cells {
		if g := v.ValueAt(i); !value.Equal(g, c) || g.Type() != c.Type() {
			t.Fatalf("boxed fallback cell %d: %v != %v", i, g, c)
		}
	}
	v.Release()
	if v.Kind != VecBoxed || v.Boxed != nil {
		t.Fatalf("release left payload: %+v", v)
	}
}

func TestAnalyzePrune(t *testing.T) {
	types := []value.Type{value.IntType, value.FloatType, value.StringType}
	layout := MapLayout{"id": 0, "flux": 1, "name": 2}
	slotType := func(s int) value.Type { return types[s] }
	parse := func(src string) sqlparse.Expr {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}

	ps := AnalyzePrune(parse("id > 100 AND flux <= 2.5 AND name = 'x'"), layout, slotType)
	if !ps.Safe || len(ps.Pruners) != 3 {
		t.Fatalf("pruners = %+v", ps)
	}
	if p := ps.Pruners[0]; p.Slot != 0 || p.Op != ">" || p.Const != 100 || !p.PrefixSafe {
		t.Errorf("pruner 0 = %+v", p)
	}
	if p := ps.Pruners[1]; p.Slot != 1 || p.Op != "<=" || p.Const != 2.5 || !p.PrefixSafe {
		t.Errorf("pruner 1 = %+v", p)
	}
	if p := ps.Pruners[2]; p.Slot != 2 || p.Op != "=" || p.Str != "x" || !p.IsStr || !p.PrefixSafe {
		t.Errorf("pruner 2 = %+v", p)
	}

	// Reversed operand order flips the comparison.
	ps = AnalyzePrune(parse("100 >= id"), layout, slotType)
	if len(ps.Pruners) != 1 || ps.Pruners[0].Op != "<=" || ps.Pruners[0].Const != 100 {
		t.Fatalf("flipped pruner = %+v", ps.Pruners)
	}

	// An erroring conjunct before the pruner clears PrefixSafe and Safe; a
	// pruner before it stays prefix-safe.
	ps = AnalyzePrune(parse("id > 5 AND flux / 0 > 1 AND id < 3"), layout, slotType)
	if ps.Safe || len(ps.Pruners) != 2 {
		t.Fatalf("pruners = %+v", ps)
	}
	if !ps.Pruners[0].PrefixSafe || ps.Pruners[1].PrefixSafe {
		t.Errorf("prefix safety = %+v", ps.Pruners)
	}

	// String comparisons prune; non-constant comparisons don't; OR spines
	// have no top-level conjuncts to mine.
	ps = AnalyzePrune(parse("name > 'a' AND id < flux"), layout, slotType)
	if len(ps.Pruners) != 1 || !ps.Pruners[0].IsStr || ps.Pruners[0].Op != ">" || ps.Pruners[0].Str != "a" {
		t.Errorf("unexpected pruners %+v", ps.Pruners)
	}
	// LIKE with a literal prefix prunes to the [prefix, successor) range.
	ps = AnalyzePrune(parse("name LIKE 'NGC%'"), layout, slotType)
	if len(ps.Pruners) != 1 || ps.Pruners[0].Op != OpLikePrefix || ps.Pruners[0].Str != "NGC" || ps.Pruners[0].Hi != "NGD" {
		t.Errorf("LIKE pruners %+v", ps.Pruners)
	}
	if ps := AnalyzePrune(parse("id > 5 OR flux < 1"), layout, slotType); len(ps.Pruners) != 0 || !ps.Safe {
		t.Errorf("OR pruners %+v safe=%v", ps.Pruners, ps.Safe)
	}
	if ps := AnalyzePrune(nil, layout, slotType); len(ps.Pruners) != 0 || ps.Safe {
		t.Errorf("nil expr prune set %+v", ps)
	}

	// NeverTrue block tests.
	checks := []struct {
		op       string
		c        float64
		min, max float64
		want     bool
	}{
		{"=", 5, 6, 10, true}, {"=", 7, 6, 10, false},
		{"<", 5, 5, 10, true}, {"<", 6, 5, 10, false},
		{"<=", 5, 6, 10, true}, {"<=", 6, 6, 10, false},
		{">", 10, 5, 10, true}, {">", 9, 5, 10, false},
		{">=", 11, 5, 10, true}, {">=", 10, 5, 10, false},
		{"<>", 5, 5, 5, true}, {"<>", 5, 5, 6, false},
	}
	for _, c := range checks {
		p := Pruner{Op: c.op, Const: c.c}
		if got := p.NeverTrue(c.min, c.max); got != c.want {
			t.Errorf("NeverTrue(%s %g over [%g,%g]) = %v, want %v", c.op, c.c, c.min, c.max, got, c.want)
		}
	}
}

func TestTypedFilterSteadyStateAllocs(t *testing.T) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileTyped(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	rows := benchScanRows(1024)
	b := tbatchFromRows(7, 1024, rows)
	ev := p.NewEval(1024)
	defer ev.Release()
	defer b.Release()
	if _, _, err := p.Filter(ev, b, ev.Seq(b.Len())); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := p.Filter(ev, b, ev.Seq(b.Len())); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("typed Filter allocates %.1f per batch in steady state, want 0", allocs)
	}
}

// fuzzTypedRows generates NULL-heavy rows with one stable type per column
// (so the typed engine's native kernels, not just the boxed fallback, see
// the fuzz traffic), including int magnitudes around 2^53 that exercise
// the float-widening comparisons.
func fuzzTypedRows(nCols, nRows int, seed int64) [][]value.Value {
	rng := rand.New(rand.NewSource(seed))
	colKind := make([]int, nCols)
	for i := range colKind {
		colKind[i] = rng.Intn(4)
	}
	strs := []string{"", "GALAXY", "NGC 1275", "a%b_c", "%"}
	rows := make([][]value.Value, nRows)
	for r := range rows {
		row := make([]value.Value, nCols)
		for i := range row {
			if rng.Intn(3) == 0 { // NULL-heavy
				row[i] = value.Null
				continue
			}
			switch colKind[i] {
			case 0:
				row[i] = value.Int([]int64{0, 1, -7, 1 << 53, 1<<53 + 1, math.MaxInt64, math.MinInt64}[rng.Intn(7)])
			case 1:
				row[i] = value.Float([]float64{0, -0.5, 2.5, math.NaN(), math.Inf(-1), 1e308}[rng.Intn(6)])
			case 2:
				row[i] = value.String(strs[rng.Intn(len(strs))])
			default:
				row[i] = value.Bool(rng.Intn(2) == 0)
			}
		}
		rows[r] = row
	}
	return rows
}

// BenchmarkTypedBatchExpr is the typed engine over the same 10k-row
// selective scan as BenchmarkBatchExpr (same rows, same predicate, same
// batch size), with native column vectors instead of boxed cells: this is
// the headline number the BENCH_scan.json trajectory tracks against the
// boxed engine.
func BenchmarkTypedBatchExpr(b *testing.B) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := CompileTyped(e, stdLayout)
	if err != nil {
		b.Fatal(err)
	}
	rows := benchScanRows(10000)
	const batchCap = 1024
	var batches []*TBatch
	for off := 0; off < len(rows); off += batchCap {
		end := off + batchCap
		if end > len(rows) {
			end = len(rows)
		}
		batches = append(batches, tbatchFromRows(7, batchCap, rows[off:end]))
	}
	ev := prog.NewEval(batchCap)
	defer ev.Release()
	want := 0
	for _, bt := range batches {
		sel, _, err := prog.Filter(ev, bt, ev.Seq(bt.Len()))
		if err != nil {
			b.Fatal(err)
		}
		want += len(sel)
	}
	if want == 0 || want > len(rows)/5 {
		b.Fatalf("scan not selective: %d of %d rows pass", want, len(rows))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		for _, bt := range batches {
			sel, _, err := prog.Filter(ev, bt, ev.Seq(bt.Len()))
			if err != nil {
				b.Fatal(err)
			}
			got += len(sel)
		}
		if got != want {
			b.Fatalf("got %d, want %d", got, want)
		}
	}
}
