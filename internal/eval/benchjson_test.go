package eval

// The benchmark trajectory: a machine-readable snapshot of the four
// expression engines on the canonical 10k-row selective scan, written to
// BENCH_scan.json at the repository root and checked in per PR so the
// perf history lives in version control (CI also uploads it as an
// artifact). Regenerate with the single documented command:
//
//	go test ./internal/eval/ -run TestWriteBenchScanJSON -bench-scan-json "$(pwd)/BENCH_scan.json"
//
// The file is only written when the flag is set; the test is otherwise a
// no-op skip, so `go test ./...` stays deterministic.

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"skyquery/internal/sqlparse"
)

var benchScanJSON = flag.String("bench-scan-json", "", "write the 10k-row scan benchmark JSON to this path")

// benchScanEngine is one engine's measurement in BENCH_scan.json.
type benchScanEngine struct {
	NsPerOp     int64   `json:"ns_per_op"`
	NsPerRow    float64 `json:"ns_per_row"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

type benchScanFile struct {
	Benchmark  string                     `json:"benchmark"`
	Expr       string                     `json:"expr"`
	Rows       int                        `json:"rows"`
	BatchSize  int                        `json:"batch_size"`
	GoVersion  string                     `json:"go_version"`
	Engines    map[string]benchScanEngine `json:"engines"`
	SpeedupVsI map[string]float64         `json:"speedup_vs_interpreted"`
}

// benchScanRowCount is the canonical scan size of the trajectory (and of
// the perf-regression gate re-measuring it).
const benchScanRowCount = 10000

// measureScanEngines runs the canonical selective scan through all four
// engines under testing.Benchmark and returns their measurements. Shared
// by the trajectory writer and TestPerfRegressionGate.
func measureScanEngines(t *testing.T) map[string]benchScanEngine {
	t.Helper()
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		t.Fatal(err)
	}
	const nRows = benchScanRowCount
	rows := benchScanRows(nRows)

	prog, err := Compile(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	bprog, err := CompileBatch(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	tprog, err := CompileTyped(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}

	// The interpreted engine needs per-row environments; build them (and
	// the batches) outside the measured loops, like the benchmarks do.
	envs := make([]MapEnv, len(rows))
	for i, row := range rows {
		envs[i] = envFromLayout(stdLayout, row)
	}
	const batchCap = DefaultBatchSize
	var boxed []*Batch
	var typed []*TBatch
	for off := 0; off < len(rows); off += batchCap {
		end := min(off+batchCap, len(rows))
		boxed = append(boxed, batchFromRows(7, batchCap, rows[off:end]))
		typed = append(typed, tbatchFromRows(7, batchCap, rows[off:end]))
	}
	bev := bprog.NewEval(batchCap)
	tev := tprog.NewEval(batchCap)
	defer tev.Release()

	engines := map[string]func(b *testing.B){
		"interpreted": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := range rows {
					if _, err := EvalBool(e, envs[r]); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		"compiled": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, row := range rows {
					if _, err := prog.EvalBool(row); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		"boxed-batch": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, bt := range boxed {
					if _, _, err := bprog.Filter(bev, bt, bev.Seq(bt.Len())); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
		"typed-batch": func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, bt := range typed {
					if _, _, err := tprog.Filter(tev, bt, tev.Seq(bt.Len())); err != nil {
						b.Fatal(err)
					}
				}
			}
		},
	}

	out := map[string]benchScanEngine{}
	for name, fn := range engines {
		res := testing.Benchmark(fn)
		out[name] = benchScanEngine{
			NsPerOp:     res.NsPerOp(),
			NsPerRow:    float64(res.NsPerOp()) / nRows,
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
	}
	return out
}

func TestWriteBenchScanJSON(t *testing.T) {
	if *benchScanJSON == "" {
		t.Skip("pass -bench-scan-json=PATH to write BENCH_scan.json")
	}
	out := benchScanFile{
		Benchmark: "selective WHERE scan, four engines, one op = all rows",
		Expr:      benchExpr,
		Rows:      benchScanRowCount,
		BatchSize: DefaultBatchSize,
		GoVersion: runtime.Version(),
		Engines:   measureScanEngines(t),
	}
	base := out.Engines["interpreted"].NsPerOp
	out.SpeedupVsI = map[string]float64{}
	for name, e := range out.Engines {
		if e.NsPerOp > 0 {
			out.SpeedupVsI[name] = round2(float64(base) / float64(e.NsPerOp))
		}
	}

	buf, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*benchScanJSON, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %s", *benchScanJSON, summary(out))
}

func round2(f float64) float64 { return float64(int64(f*100+0.5)) / 100 }

func summary(f benchScanFile) string {
	s := ""
	for _, name := range []string{"interpreted", "compiled", "boxed-batch", "typed-batch"} {
		e := f.Engines[name]
		s += fmt.Sprintf("%s %.1f ns/row (%d allocs); ", name, e.NsPerRow, e.AllocsPerOp)
	}
	return s
}
