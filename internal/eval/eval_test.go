package eval

import (
	"strings"
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

func evalStr(t *testing.T, src string, env Env) value.Value {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func evalErr(t *testing.T, src string, env Env) error {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	_, err = Eval(e, env)
	if err == nil {
		t.Fatalf("eval %q: expected error", src)
	}
	return err
}

func TestLiteralsAndArithmetic(t *testing.T) {
	cases := map[string]value.Value{
		"1 + 2":                 value.Int(3),
		"7 / 2":                 value.Float(3.5),
		"7 % 3":                 value.Int(1),
		"2 * 3 + 1":             value.Int(7),
		"2 + 3 * 2":             value.Int(8),
		"(2 + 3) * 2":           value.Int(10),
		"-5":                    value.Int(-5),
		"- (2.5)":               value.Float(-2.5),
		"1.5e2":                 value.Float(150),
		"'a' + 'b'":             value.String("ab"),
		"TRUE":                  value.Bool(true),
		"NULL":                  value.Null,
		"NULL + 1":              value.Null,
		"2 = 2":                 value.Bool(true),
		"2 <> 3":                value.Bool(true),
		"2 < 3":                 value.Bool(true),
		"3 <= 3":                value.Bool(true),
		"2 > 3":                 value.Bool(false),
		"2 >= 3":                value.Bool(false),
		"2 = NULL":              value.Null,
		"'abc' LIKE 'a%'":       value.Bool(true),
		"'abc' LIKE 'a_c'":      value.Bool(true),
		"'abc' LIKE 'b%'":       value.Bool(false),
		"'a.c' LIKE 'a.c'":      value.Bool(true),
		"'axc' LIKE 'a.c'":      value.Bool(false), // dot is literal, not regex
		"NULL LIKE 'a%'":        value.Null,
		"1 BETWEEN 0 AND 2":     value.Bool(true),
		"3 BETWEEN 0 AND 2":     value.Bool(false),
		"3 NOT BETWEEN 0 AND 2": value.Bool(true),
		"2 IN (1, 2, 3)":        value.Bool(true),
		"5 IN (1, 2, 3)":        value.Bool(false),
		"5 NOT IN (1, 2, 3)":    value.Bool(true),
		"5 IN (1, NULL)":        value.Null,
		"2 IN (2, NULL)":        value.Bool(true),
		"NULL IS NULL":          value.Bool(true),
		"1 IS NULL":             value.Bool(false),
		"1 IS NOT NULL":         value.Bool(true),
		"NOT TRUE":              value.Bool(false),
		"NOT NULL":              value.Null,
		"TRUE AND FALSE":        value.Bool(false),
		"TRUE OR FALSE":         value.Bool(true),
		"FALSE AND NULL":        value.Bool(false),
		"TRUE OR NULL":          value.Bool(true),
		"TRUE AND NULL":         value.Null,
		"FALSE OR NULL":         value.Null,
	}
	for src, want := range cases {
		got := evalStr(t, src, MapEnv{})
		if !value.Equal(got, want) || got.Type() != want.Type() {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// The right side references an unknown column but must not be reached.
	env := MapEnv{"x": value.Int(1)}
	if got := evalStr(t, "FALSE AND nosuch = 1", env); got.IsTrue() {
		t.Error("FALSE AND ... should be false")
	}
	if got := evalStr(t, "TRUE OR nosuch = 1", env); !got.IsTrue() {
		t.Error("TRUE OR ... should be true")
	}
	evalErr(t, "TRUE AND nosuch = 1", env)
}

func TestColumnResolution(t *testing.T) {
	env := MapEnv{
		"O.flux": value.Float(10.5),
		"type":   value.String("GALAXY"),
	}
	if got := evalStr(t, "O.flux > 10", env); !got.IsTrue() {
		t.Error("qualified lookup failed")
	}
	if got := evalStr(t, "type = 'GALAXY'", env); !got.IsTrue() {
		t.Error("bare lookup failed")
	}
	// A qualified reference may fall back to the bare name.
	if got := evalStr(t, "T.type = 'GALAXY'", env); !got.IsTrue() {
		t.Error("fallback lookup failed")
	}
	err := evalErr(t, "O.nosuch = 1", env)
	if !strings.Contains(err.Error(), "unknown column") {
		t.Errorf("error = %v", err)
	}
}

func TestPaperPredicates(t *testing.T) {
	// The two residual predicates from the paper's example query.
	env := MapEnv{
		"O.type":   value.String("GALAXY"),
		"O.i_flux": value.Float(12.5),
		"T.i_flux": value.Float(9.0),
	}
	if got := evalStr(t, "O.type = 'GALAXY'", env); !got.IsTrue() {
		t.Error("type predicate")
	}
	if got := evalStr(t, "(O.i_flux - T.i_flux) > 2", env); !got.IsTrue() {
		t.Error("flux predicate")
	}
	env["T.i_flux"] = value.Float(11.0)
	if got := evalStr(t, "(O.i_flux - T.i_flux) > 2", env); got.IsTrue() {
		t.Error("flux predicate should now fail")
	}
}

func TestFunctions(t *testing.T) {
	cases := map[string]value.Value{
		"ABS(-3)":              value.Int(3),
		"ABS(-2.5)":            value.Float(2.5),
		"SQRT(9)":              value.Float(3),
		"FLOOR(2.7)":           value.Float(2),
		"CEIL(2.1)":            value.Float(3),
		"CEILING(2.1)":         value.Float(3),
		"POWER(2, 10)":         value.Float(1024),
		"POW(2, 3)":            value.Float(8),
		"LOG(1)":               value.Float(0),
		"LOG10(100)":           value.Float(2),
		"EXP(0)":               value.Float(1),
		"SIN(0)":               value.Float(0),
		"COS(0)":               value.Float(1),
		"DEGREES(0)":           value.Float(0),
		"RADIANS(0)":           value.Float(0),
		"UPPER('ab')":          value.String("AB"),
		"LOWER('AB')":          value.String("ab"),
		"LEN('abc')":           value.Int(3),
		"LENGTH('abc')":        value.Int(3),
		"COALESCE(NULL, 2)":    value.Int(2),
		"COALESCE(NULL, NULL)": value.Null,
		"ABS(NULL)":            value.Null,
		"UPPER(NULL)":          value.Null,
	}
	for src, want := range cases {
		got := evalStr(t, src, MapEnv{})
		if !value.Equal(got, want) {
			t.Errorf("%s = %v, want %v", src, got, want)
		}
	}
}

func TestFunctionErrors(t *testing.T) {
	evalErr(t, "NOSUCHFN(1)", MapEnv{})
	evalErr(t, "ABS(1, 2)", MapEnv{})
	evalErr(t, "ABS('x')", MapEnv{})
	evalErr(t, "POWER(1)", MapEnv{})
	evalErr(t, "POWER('a', 'b')", MapEnv{})
	evalErr(t, "1 LIKE 'x'", MapEnv{})
	evalErr(t, "1 / 0", MapEnv{})
	evalErr(t, "1 = 'x'", MapEnv{})
	evalErr(t, "-'x'", MapEnv{})
}

func TestEvalBool(t *testing.T) {
	ok, err := EvalBool(nil, MapEnv{})
	if err != nil || !ok {
		t.Error("nil predicate should be true")
	}
	e, _ := sqlparse.ParseExpr("NULL = 1")
	ok, err = EvalBool(e, MapEnv{})
	if err != nil || ok {
		t.Error("UNKNOWN predicate should be false")
	}
	e, _ = sqlparse.ParseExpr("1 = 1")
	ok, err = EvalBool(e, MapEnv{})
	if err != nil || !ok {
		t.Error("true predicate")
	}
}

func TestEnvFunc(t *testing.T) {
	env := EnvFunc(func(table, column string) (value.Value, error) {
		return value.String(table + "." + column), nil
	})
	got := evalStr(t, "a.b = 'a.b'", env)
	if !got.IsTrue() {
		t.Error("EnvFunc lookup failed")
	}
}

func TestIntegerLiteralTyping(t *testing.T) {
	// "2" is INT, "2.0" and "2e0" are FLOAT.
	if got := evalStr(t, "2", MapEnv{}); got.Type() != value.IntType {
		t.Errorf("2 has type %v", got.Type())
	}
	if got := evalStr(t, "2.0", MapEnv{}); got.Type() != value.FloatType {
		t.Errorf("2.0 has type %v", got.Type())
	}
	if got := evalStr(t, "2e0", MapEnv{}); got.Type() != value.FloatType {
		t.Errorf("2e0 has type %v", got.Type())
	}
}

func TestLikeCacheConcurrency(t *testing.T) {
	e, err := sqlparse.ParseExpr("'abc' LIKE 'a%'")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 100; j++ {
				if v, err := Eval(e, MapEnv{}); err != nil || !v.IsTrue() {
					t.Errorf("concurrent LIKE failed: %v %v", v, err)
					break
				}
			}
			done <- true
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
}
