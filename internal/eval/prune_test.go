package eval

import (
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// TestAnalyzeChainPrune exercises the chain-step sequence analysis on an
// extend-step shaped slot space: carried-tuple columns in slots 0..1,
// candidate-table columns (id, flux, name) in slots 2..4.
func TestAnalyzeChainPrune(t *testing.T) {
	const npc = 2
	types := []value.Type{value.FloatType, value.FloatType, value.IntType, value.FloatType, value.StringType}
	combined := MapLayout{"p.a": 0, "p.b": 1, "c.id": 2, "c.flux": 3, "c.name": 4}
	slotType := func(s int) value.Type { return types[s] }
	candCol := func(s int) (int, bool) { return s - npc, s >= npc }
	parse := func(src string) sqlparse.Expr {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		return e
	}

	// Local predicate pruner lands in candidate-column space; the cross
	// predicate's candidate conjunct prunes too, its carried conjunct not.
	ps := AnalyzeChainPrune([]PruneExpr{
		{Expr: parse("c.id > 100"), Layout: combined},
		{Expr: parse("p.a < 5 AND c.flux <= 2.5"), Layout: combined},
	}, slotType, candCol)
	if !ps.Safe || len(ps.Pruners) != 2 {
		t.Fatalf("prune set = %+v", ps)
	}
	if p := ps.Pruners[0]; p.Slot != 0 || p.Op != ">" || p.Const != 100 || !p.PrefixSafe {
		t.Errorf("local pruner = %+v", p)
	}
	if p := ps.Pruners[1]; p.Slot != 1 || p.Op != "<=" || p.Const != 2.5 || !p.PrefixSafe {
		t.Errorf("cross pruner = %+v", p)
	}

	// An erroring conjunct in the local predicate clears prefix safety for
	// every later pruner, across the expression boundary.
	ps = AnalyzeChainPrune([]PruneExpr{
		{Expr: parse("c.id > 5 AND c.flux / 0 > 1"), Layout: combined},
		{Expr: parse("c.flux < 1"), Layout: combined},
	}, slotType, candCol)
	if ps.Safe || len(ps.Pruners) != 2 {
		t.Fatalf("prune set = %+v", ps)
	}
	if !ps.Pruners[0].PrefixSafe || ps.Pruners[1].PrefixSafe {
		t.Errorf("prefix safety across exprs = %+v", ps.Pruners)
	}

	// Nil members are skipped; a sequence of nils has no pruners and is
	// vacuously safe (no conjunct can error).
	ps = AnalyzeChainPrune([]PruneExpr{{Expr: nil, Layout: combined}}, slotType, candCol)
	if len(ps.Pruners) != 0 || !ps.Safe {
		t.Errorf("nil sequence prune set = %+v", ps)
	}

	// A conjunct over a carried column alone produces no pruner but its
	// error-freedom still feeds the prefix computation.
	ps = AnalyzeChainPrune([]PruneExpr{
		{Expr: parse("p.a / 0 > 1"), Layout: combined},
		{Expr: parse("c.id < 3"), Layout: combined},
	}, slotType, candCol)
	if ps.Safe || len(ps.Pruners) != 1 || ps.Pruners[0].PrefixSafe {
		t.Fatalf("carried-column prefix = %+v", ps)
	}
}
