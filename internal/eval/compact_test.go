package eval

// CompactTrue tests and the null-mask compaction micro-benchmark: the
// word-at-a-time path must agree with the per-row reference on every
// mask shape (dense runs, sparse bits, NULL-heavy, nil mask, non-word
// tails), and the benchmark shows the win over the branchy loop.

import (
	"math/rand"
	"testing"
)

// compactTrueScalar is the per-row reference implementation.
func compactTrueScalar(dst []int, vals, nulls []bool, n int) []int {
	for i := 0; i < n; i++ {
		if vals[i] && (nulls == nil || !nulls[i]) {
			dst = append(dst, i)
		}
	}
	return dst
}

func TestCompactTrueMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct {
		name     string
		trueFrac float64
		nullFrac float64
		nilNulls bool
		lengths  []int
	}{
		{name: "dense", trueFrac: 0.95, nullFrac: 0.01, lengths: []int{0, 1, 7, 8, 9, 64, 1021, 1024}},
		{name: "sparse", trueFrac: 0.02, nullFrac: 0.02, lengths: []int{15, 16, 1024}},
		{name: "null-heavy", trueFrac: 0.9, nullFrac: 0.7, lengths: []int{63, 1024}},
		{name: "all-true-nil-nulls", trueFrac: 1, nilNulls: true, lengths: []int{8, 200, 1024}},
		{name: "all-false", trueFrac: 0, nullFrac: 0, lengths: []int{8, 1024}},
	}
	for _, sh := range shapes {
		for _, n := range sh.lengths {
			vals := make([]bool, n)
			var nulls []bool
			if !sh.nilNulls {
				nulls = make([]bool, n)
			}
			for i := 0; i < n; i++ {
				vals[i] = rng.Float64() < sh.trueFrac
				if nulls != nil {
					nulls[i] = rng.Float64() < sh.nullFrac
				}
			}
			want := compactTrueScalar(nil, vals, nulls, n)
			got := CompactTrue(nil, vals, nulls, n)
			if len(got) != len(want) {
				t.Fatalf("%s n=%d: %d indices, want %d", sh.name, n, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s n=%d: index %d = %d, want %d", sh.name, n, i, got[i], want[i])
				}
			}
		}
	}
}

// benchMasks builds a 4096-row mask pair with the given pass fraction.
func benchMasks(passFrac float64) (vals, nulls []bool) {
	rng := rand.New(rand.NewSource(7))
	const n = 4096
	vals, nulls = make([]bool, n), make([]bool, n)
	for i := 0; i < n; i++ {
		vals[i] = rng.Float64() < passFrac
		nulls[i] = rng.Float64() < 0.05
	}
	return vals, nulls
}

func BenchmarkCompactTrueWord(b *testing.B) {
	for _, frac := range []float64{0.02, 0.5, 0.98} {
		vals, nulls := benchMasks(frac)
		b.Run(benchFracName(frac), func(b *testing.B) {
			dst := make([]int, 0, len(vals))
			b.SetBytes(int64(len(vals)))
			for i := 0; i < b.N; i++ {
				dst = CompactTrue(dst[:0], vals, nulls, len(vals))
			}
		})
	}
}

func BenchmarkCompactTrueScalar(b *testing.B) {
	for _, frac := range []float64{0.02, 0.5, 0.98} {
		vals, nulls := benchMasks(frac)
		b.Run(benchFracName(frac), func(b *testing.B) {
			dst := make([]int, 0, len(vals))
			b.SetBytes(int64(len(vals)))
			for i := 0; i < b.N; i++ {
				dst = compactTrueScalar(dst[:0], vals, nulls, len(vals))
			}
		})
	}
}

func benchFracName(f float64) string {
	switch {
	case f < 0.1:
		return "sparse"
	case f > 0.9:
		return "dense"
	default:
		return "mixed"
	}
}
