package eval

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// batchFromRows transposes row-major test rows into a column-major batch.
func batchFromRows(width, capacity int, rows [][]value.Value) *Batch {
	b := NewBatch(width, capacity)
	for s := 0; s < width; s++ {
		col := b.Col(s)
		for i, row := range rows {
			col[i] = row[s]
		}
	}
	b.SetLen(len(rows))
	return b
}

// scalarRowResults evaluates the scalar program row by row, returning the
// per-row values and the first erroring row (-1 if none) — the reference
// the batch engine must reproduce exactly.
func scalarRowResults(prog *Program, rows [][]value.Value) (vals []value.Value, firstErr int, err error) {
	vals = make([]value.Value, len(rows))
	for i, row := range rows {
		v, verr := prog.Eval(row)
		if verr != nil {
			return vals, i, verr
		}
		vals[i] = v
	}
	return vals, -1, nil
}

// threeWayCompare asserts the interpreter, the scalar program and the
// batch program agree on every row: identical values (and types), and —
// between scalar and batch — the identical first erroring row. It
// exercises the batch program both as one full batch and split into
// chunks of every size from 1 up, to shake out batch-boundary bugs.
// The typed engine is held to the same contract via typedCompare, making
// this a four-way differential check.
func threeWayCompare(t *testing.T, src string, layout MapLayout, rows [][]value.Value) {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	width := 0
	for _, s := range layout {
		if s+1 > width {
			width = s + 1
		}
	}

	prog, serr := Compile(e, layout)
	bprog, berr := CompileBatch(e, layout)
	if (serr != nil) != (berr != nil) {
		t.Fatalf("%q: scalar compile err=%v, batch compile err=%v", src, serr, berr)
	}
	if serr != nil {
		// Both compilers reject; the scalar-vs-interpreter contract for
		// this case is already covered by compileAndCompare.
		return
	}
	if !reflect.DeepEqual(prog.Refs(), bprog.Refs()) {
		t.Errorf("%q: scalar refs %v, batch refs %v", src, prog.Refs(), bprog.Refs())
	}

	// Interpreter vs scalar (the established contract), and the scalar
	// reference row results.
	compileAndCompare(t, src, layout, rows)
	want, wantErrRow, wantErr := scalarRowResults(prog, rows)

	// Fourth engine: typed vectors against the same reference.
	typedCompare(t, src, layout, rows, want, wantErrRow, wantErr)

	for chunk := 1; chunk <= len(rows); chunk++ {
		ev := bprog.NewEval(chunk)
		for off := 0; off < len(rows); off += chunk {
			end := off + chunk
			if end > len(rows) {
				end = len(rows)
			}
			b := batchFromRows(width, chunk, rows[off:end])
			got, errRow, err := bprog.EvalVec(ev, b, ev.Seq(b.Len()))

			// The expected first error within this chunk.
			expErrRow := -1
			if wantErrRow >= off && wantErrRow < end {
				expErrRow = wantErrRow - off
			}
			if (err != nil) != (expErrRow >= 0) || errRow != expErrRow {
				t.Fatalf("%q chunk=%d off=%d: batch errRow=%d err=%v, scalar first error row %d (%v)",
					src, chunk, off, errRow, err, wantErrRow, wantErr)
			}
			limit := end - off
			if expErrRow >= 0 {
				limit = expErrRow
			}
			for i := 0; i < limit; i++ {
				w := want[off+i]
				if !value.Equal(w, got[i]) || w.Type() != got[i].Type() {
					t.Fatalf("%q chunk=%d row %d: scalar=%v (%v), batch=%v (%v)",
						src, chunk, off+i, w, w.Type(), got[i], got[i].Type())
				}
			}
			if wantErrRow >= 0 && wantErrRow < end {
				break // the scalar scan would have stopped here
			}
		}
	}

	// Filter agreement on the full batch: the passing set must equal the
	// rows whose scalar result is TRUE (both stop at the first error).
	ev := bprog.NewEval(len(rows))
	b := batchFromRows(width, len(rows), rows)
	sel, errRow, err := bprog.Filter(ev, b, ev.Seq(len(rows)))
	if (err != nil) != (wantErrRow >= 0) || errRow != wantErrRow {
		t.Fatalf("%q: Filter errRow=%d err=%v, want row %d (%v)", src, errRow, err, wantErrRow, wantErr)
	}
	var wantSel []int
	for i := range rows {
		if wantErrRow >= 0 && i >= wantErrRow {
			break
		}
		if want[i].IsTrue() {
			wantSel = append(wantSel, i)
		}
	}
	if !reflect.DeepEqual(append([]int{}, sel...), append([]int{}, wantSel...)) {
		t.Errorf("%q: Filter sel=%v, want %v", src, sel, wantSel)
	}
}

func TestBatchMatchesScalarAndInterpreter(t *testing.T) {
	exprs := []string{
		// Literals, arithmetic, typing.
		"1 + 2", "7 / 2", "7 % 3", "2 * 3 + 1", "-5", "- (2.5)", "1.5e2",
		"'a' + 'b'", "TRUE", "NULL", "NULL + 1",
		// Comparisons and three-valued logic.
		"2 = 2", "2 <> 3", "2 < 3", "3 <= 3", "2 > 3", "2 >= 3", "2 = NULL",
		"TRUE AND FALSE", "TRUE OR FALSE", "FALSE AND NULL", "TRUE OR NULL",
		"TRUE AND NULL", "FALSE OR NULL", "NOT TRUE", "NOT NULL",
		// Column-driven vectorized forms.
		"O.type = 'GALAXY'",
		"(O.i_flux - T.i_flux) > 2",
		"O.type = 'GALAXY' AND (O.i_flux - T.i_flux) > 2",
		"O.type = 'GALAXY' OR n > 3",
		"x + n", "x * n", "x % n", "x / n", "-x", "x - n",
		"ABS(O.dec) < 30.0", "ABS(x)",
		"O.dec BETWEEN -30 AND 30",
		"n BETWEEN x AND 10",
		"O.type IN ('GALAXY', 'QSO')",
		"n IN (1, 7, NULL)", "n IN (x, 0)",
		"O.type IS NULL", "O.type IS NOT NULL", "x IS NULL",
		"O.type LIKE 'GAL%'", "name LIKE 'NGC%'", "name LIKE name", "n LIKE 'x'",
		"COALESCE(O.type, name, 'none')",
		"UPPER(name)", "LOWER(O.type)", "LEN(name)", "POWER(2, n)",
		"NOT (O.type = 'GALAXY' OR n > 3)",
		"x = 1 OR x = 2 OR n IS NULL",
		"(O.i_flux + T.i_flux) / 2 >= T.i_flux",
		// Error-bearing rows: mixed-type comparisons and arithmetic, bad
		// operands partway down the batch.
		"x > 0", "x + 1 > n", "name > 2", "x = name",
		"n / (n - n)", "x % (n - n)",
		"-name", "ABS(name) > 0",
		// Constant folding interplay, including constant errors that must
		// fire at evaluation time on the first selected row.
		"1 / 0", "1 % 0", "x > 0 AND 1 / 0 = 1", "FALSE AND 1 / 0 = 1",
		"TRUE OR 1 / 0 = 1", "1 = 1 AND O.type = 'GALAXY'",
		// Right-nested AND/OR with non-bool and NULL operands: value.And
		// is not associative there, so flattening the right side would
		// re-associate and diverge (regression: the batch compiler must
		// keep a nested right AND as a single member).
		"x AND (n AND x)", "x AND ((n > 0) AND NULL)",
		"n AND (x IS NULL AND NULL)", "(x AND n) AND x",
		"x AND (x > 0 AND n / (n - n) > 0)",
		"x OR (n OR NULL)", "x OR ((n > 0) OR NULL)", "(x OR n) OR NULL",
		"x OR (x > 0 OR n / (n - n) > 0)",
	}
	rows := stdRows()
	for _, src := range exprs {
		threeWayCompare(t, src, stdLayout, rows)
	}
}

func TestBatchCompileReportsBindingErrors(t *testing.T) {
	cases := []string{
		"nosuch = 1",
		"Q.nosuch = 1",
		"NOSUCHFN(1)",
		"ABS(1, 2)",
		"POWER(1)",
		"FALSE AND nosuch = 1", // dead side still binding-checked
		"TRUE OR nosuch = 1",
	}
	for _, src := range cases {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := CompileBatch(e, stdLayout); err == nil {
			t.Errorf("CompileBatch(%q) succeeded, want error", src)
		}
	}
}

func TestBatchConstantFolding(t *testing.T) {
	e, err := sqlparse.ParseExpr("1 + 2 * 3 = 7 AND 2 < 3")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileBatch(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Refs()) != 0 {
		t.Errorf("constant program references slots %v", p.Refs())
	}
	ev := p.NewEval(4)
	b := NewBatch(7, 4)
	b.SetLen(3)
	sel, errRow, ferr := p.Filter(ev, b, ev.Seq(3))
	if ferr != nil || errRow != -1 || len(sel) != 3 {
		t.Errorf("constant TRUE filter = %v, %d, %v", sel, errRow, ferr)
	}

	// A constant error fires at the first *selected* row, and not at all
	// over an empty selection (a zero-row scan must stay silent).
	e, err = sqlparse.ParseExpr("1 / 0 = 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err = CompileBatch(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	ev = p.NewEval(4)
	if _, errRow, ferr := p.Filter(ev, b, ev.Seq(3)); ferr == nil || errRow != 0 {
		t.Errorf("constant error filter: errRow=%d err=%v", errRow, ferr)
	}
	if _, errRow, ferr := p.Filter(ev, b, ev.Seq(0)); ferr != nil || errRow != -1 {
		t.Errorf("constant error over empty selection: errRow=%d err=%v", errRow, ferr)
	}
}

func TestNilBatchProgram(t *testing.T) {
	p, err := CompileBatch(nil, stdLayout)
	if err != nil {
		t.Fatalf("CompileBatch(nil) = %v", err)
	}
	if p != nil {
		t.Fatal("CompileBatch(nil) returned a program")
	}
	if p.Refs() != nil {
		t.Error("nil program has refs")
	}
	ev := p.NewEval(8)
	b := NewBatch(2, 8)
	b.SetLen(5)
	sel, errRow, ferr := p.Filter(ev, b, ev.Seq(5))
	if ferr != nil || errRow != -1 || len(sel) != 5 {
		t.Errorf("nil program Filter = %v, %d, %v; want identity", sel, errRow, ferr)
	}
	if _, _, err := p.EvalVec(ev, b, ev.Seq(5)); err == nil {
		t.Error("nil program EvalVec should error")
	}
}

func TestBatchUnfilledSlot(t *testing.T) {
	e, err := sqlparse.ParseExpr("x = 1")
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileBatch(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	ev := p.NewEval(4)
	b := NewBatch(7, 4) // slot 6 ("x") never filled
	b.SetLen(2)
	if _, errRow, ferr := p.Filter(ev, b, ev.Seq(2)); ferr == nil || errRow != -1 {
		t.Errorf("unfilled slot: errRow=%d err=%v; want structural error with errRow -1", errRow, ferr)
	}
	// Too narrow a batch is rejected the same way.
	narrow := NewBatch(3, 4)
	narrow.SetLen(2)
	if _, _, ferr := p.Filter(ev, narrow, ev.Seq(2)); ferr == nil {
		t.Error("narrow batch accepted")
	}
}

func TestBatchSizeKnob(t *testing.T) {
	old := BatchSize()
	defer SetBatchSize(old)
	SetBatchSize(3)
	if BatchSize() != 3 {
		t.Errorf("BatchSize = %d", BatchSize())
	}
	SetBatchSize(0) // invalid selects the default
	if BatchSize() != DefaultBatchSize {
		t.Errorf("BatchSize after reset = %d", BatchSize())
	}
}

func TestBatchFilterSteadyStateAllocs(t *testing.T) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileBatch(e, stdLayout)
	if err != nil {
		t.Fatal(err)
	}
	rows := benchScanRows(1024)
	b := batchFromRows(7, 1024, rows)
	ev := p.NewEval(1024)
	allocs := testing.AllocsPerRun(20, func() {
		if _, _, err := p.Filter(ev, b, ev.Seq(b.Len())); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("Filter allocates %.1f per batch in steady state, want 0", allocs)
	}
}

// FuzzBatchDifferential is the four-way differential fuzzer: on every
// parseable expression and random row set, the interpreter, the scalar
// program, the boxed batch program and the typed batch program must agree
// on values, and the compiled engines must fail on the identical first
// row. Rows come from two generators: the historical per-cell-random one
// (mixed-type columns, driving the typed engine's boxed fallbacks) and a
// NULL-heavy one with a stable type per column (driving the native int64/
// float64/string/bool kernels, including the 2^53 float-widening edge).
// Seeds reuse the FuzzParseExpr corpus, like FuzzCompileDifferential.
func FuzzBatchDifferential(f *testing.F) {
	seeds := []string{
		`(O.i_flux - T.i_flux) > 2`,
		`1 + 2 * 3 = 7 AND 2 < 3 OR FALSE`,
		`a.name = 'O''Neill'`,
		`ABS(O.a + T.b) > 1 AND O.c IS NULL AND T.d IN (1, O.e) AND O.f BETWEEN 1 AND 2`,
		`x LIKE '%''%'`,
		`COALESCE(a, b, 1) % 2 = 0`,
		`NOT NOT NOT x`,
		`a / b > c OR d % e = 0`,
		// Typed fast paths and their fallbacks: NULL-heavy mixed int/float
		// comparisons, widening equality, native AND/OR spines.
		`a = b AND a <= 9007199254740993 AND b >= -5`,
		`a IS NULL OR a > 0.5 AND b <> 2`,
		`a + 0.5 > b AND a % 3 = 0`,
		`a < b OR b IS NULL AND a * 2 >= b`,
	}
	for _, s := range seeds {
		f.Add(s, int64(1))
	}
	for _, s := range parseExprCorpus(f) {
		f.Add(s, int64(2))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			return
		}
		cols := sqlparse.Columns(e)
		if len(cols) > 64 {
			return
		}
		layout := MapLayout{}
		for i, c := range cols {
			key := c.Column
			if c.Table != "" {
				key = c.Table + "." + c.Column
			}
			layout[key] = i
		}
		prog, serr := Compile(e, layout)
		bprog, berr := CompileBatch(e, layout)
		if (serr != nil) != (berr != nil) {
			t.Fatalf("%q: scalar compile err=%v, batch compile err=%v", src, serr, berr)
		}
		if serr != nil {
			return
		}
		sref, bref := prog.Refs(), bprog.Refs()
		if len(sref) != len(bref) {
			t.Fatalf("%q: scalar refs %v, batch refs %v", src, sref, bref)
		}
		for i := range sref {
			if sref[i] != bref[i] {
				t.Fatalf("%q: scalar refs %v, batch refs %v", src, sref, bref)
			}
		}

		const nRows = 5
		check := func(rows [][]value.Value) {
			want, wantErrRow, wantErr := scalarRowResults(prog, rows)
			// Interpreter vs scalar: error presence and values per row (the
			// interpreter has no batch, so only rows the scalar scan reaches).
			for r, row := range rows {
				if wantErrRow >= 0 && r > wantErrRow {
					break
				}
				iv, ierr := Eval(e, envFromLayout(layout, row))
				if (ierr != nil) != (wantErrRow == r) {
					t.Fatalf("%q row %d: interpreter err=%v, scalar err row=%d", src, r, ierr, wantErrRow)
				}
				if ierr == nil && (!value.Equal(iv, want[r]) || iv.Type() != want[r].Type()) {
					t.Fatalf("%q row %d: interpreter=%v (%v), scalar=%v (%v)", src, r, iv, iv.Type(), want[r], want[r].Type())
				}
			}
			// Boxed batch vs scalar, as one full batch and as single-row
			// batches.
			for _, chunk := range []int{nRows, 1} {
				ev := bprog.NewEval(chunk)
				for off := 0; off < nRows; off += chunk {
					end := off + chunk
					if end > nRows {
						end = nRows
					}
					b := batchFromRows(len(cols), chunk, rows[off:end])
					got, errRow, err := bprog.EvalVec(ev, b, ev.Seq(b.Len()))
					expErrRow := -1
					if wantErrRow >= off && wantErrRow < end {
						expErrRow = wantErrRow - off
					}
					if (err != nil) != (expErrRow >= 0) || errRow != expErrRow {
						t.Fatalf("%q chunk=%d off=%d: batch errRow=%d err=%v, scalar first error row %d",
							src, chunk, off, errRow, err, wantErrRow)
					}
					limit := end - off
					if expErrRow >= 0 {
						limit = expErrRow
					}
					for i := 0; i < limit; i++ {
						w := want[off+i]
						if !value.Equal(w, got[i]) || w.Type() != got[i].Type() {
							t.Fatalf("%q chunk=%d row %d: scalar=%v (%v), batch=%v (%v)",
								src, chunk, off+i, w, w.Type(), got[i], got[i].Type())
						}
					}
					if expErrRow >= 0 {
						break
					}
				}
			}
			// Typed batch vs the same reference (all chunkings + Filter).
			typedCompare(t, src, layout, rows, want, wantErrRow, wantErr)
		}

		rows := make([][]value.Value, nRows)
		for r := range rows {
			rows[r] = fuzzRow(len(cols), seed+int64(r))
		}
		check(rows)
		check(fuzzTypedRows(len(cols), nRows, seed))
	})
}

// benchScanRows builds the 10k-row-style selective scan input: roughly 5%
// of rows pass benchExpr, with every conjunct selective enough that the
// batch engine's shrinking selection vectors matter.
func benchScanRows(n int) [][]value.Value {
	rng := rand.New(rand.NewSource(42))
	rows := make([][]value.Value, n)
	types := []string{"GALAXY", "STAR", "QSO"}
	for i := range rows {
		name := "UGC 100"
		if rng.Intn(2) == 0 {
			name = fmt.Sprintf("NGC %d", rng.Intn(8000))
		}
		rows[i] = []value.Value{
			value.String(types[rng.Intn(len(types))]), // O.type
			value.Float(rng.Float64() * 20),           // O.i_flux
			value.Float(rng.Float64() * 20),           // T.i_flux
			value.Float(rng.Float64()*180 - 90),       // O.dec
			value.String(name),                        // name
			value.Int(int64(rng.Intn(20))),            // n
			value.Int(int64(rng.Intn(200)) - 100),     // x
		}
	}
	return rows
}

// BenchmarkCompiledExprScan is the row-at-a-time engine over a 10k-row
// selective scan: one EvalBool per row through the closure tree. This is
// the baseline BenchmarkBatchExpr is measured against (same rows, same
// predicate, same per-op work).
func BenchmarkCompiledExprScan(b *testing.B) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(e, stdLayout)
	if err != nil {
		b.Fatal(err)
	}
	rows := benchScanRows(10000)
	want := 0
	for _, row := range rows {
		ok, err := prog.EvalBool(row)
		if err != nil {
			b.Fatal(err)
		}
		if ok {
			want++
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		for _, row := range rows {
			ok, err := prog.EvalBool(row)
			if err != nil {
				b.Fatal(err)
			}
			if ok {
				got++
			}
		}
		if got != want {
			b.Fatalf("got %d, want %d", got, want)
		}
	}
}

// BenchmarkBatchExpr is the vectorized engine over the same 10k-row
// selective scan, in batches of 1024 with a reused evaluator: typed
// kernels over column slices, shrinking selection vectors through the
// conjunction, 0 allocs per batch in steady state.
func BenchmarkBatchExpr(b *testing.B) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := CompileBatch(e, stdLayout)
	if err != nil {
		b.Fatal(err)
	}
	rows := benchScanRows(10000)
	const batchCap = 1024
	var batches []*Batch
	for off := 0; off < len(rows); off += batchCap {
		end := off + batchCap
		if end > len(rows) {
			end = len(rows)
		}
		batches = append(batches, batchFromRows(7, batchCap, rows[off:end]))
	}
	ev := prog.NewEval(batchCap)
	want := 0
	for _, bt := range batches {
		sel, _, err := prog.Filter(ev, bt, ev.Seq(bt.Len()))
		if err != nil {
			b.Fatal(err)
		}
		want += len(sel)
	}
	if want == 0 || want > len(rows)/5 {
		b.Fatalf("scan not selective: %d of %d rows pass", want, len(rows))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got := 0
		for _, bt := range batches {
			sel, _, err := prog.Filter(ev, bt, ev.Seq(bt.Len()))
			if err != nil {
				b.Fatal(err)
			}
			got += len(sel)
		}
		if got != want {
			b.Fatalf("got %d, want %d", got, want)
		}
	}
}
