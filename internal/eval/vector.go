package eval

// This file defines the typed column vectors the fourth engine
// (CompileTyped, typed.go) evaluates over, and the slab pools their
// payloads are drawn from. A Vector is one batch column: a native payload
// slice — []int64, []float64, []string or []bool — plus a null mask, or a
// boxed []value.Value fallback for columns whose cells mix types. The
// storage engine hands out zero-copy views over its typed column backends
// (Table.Int64Col and friends slice directly into table memory), so a
// base-table scan feeds typed kernels without boxing a single cell; gather
// sites (HTM candidate lists, chain-step candidates, dataset transposes)
// fill pooled scratch payloads instead.
//
// Ownership: a Vector either *views* memory it does not own (Set*View,
// never written through) or *owns* pooled scratch obtained from the slab
// pools ( *Buf methods). A given vector must stay in one mode for its
// lifetime; Release returns owned payloads to the pools. The pools are
// plain sync.Pools, so steady-state federated queries stop re-allocating
// batch scratch per call.

import (
	"encoding/binary"
	"math/bits"
	"sync"
	"unsafe"

	"skyquery/internal/value"
)

// VecKind discriminates a Vector's payload representation.
type VecKind uint8

const (
	// VecBoxed is the fallback payload: one value.Value per row, nulls
	// carried inside the values (Nulls is unused).
	VecBoxed VecKind = iota
	// VecInt is an int64 payload with a null mask.
	VecInt
	// VecFloat is a float64 payload with a null mask.
	VecFloat
	// VecStr is a string payload with a null mask.
	VecStr
	// VecBool is a bool payload with a null mask.
	VecBool
)

// KindOf maps a column type to the vector kind that carries it natively.
func KindOf(t value.Type) VecKind {
	switch t {
	case value.IntType:
		return VecInt
	case value.FloatType:
		return VecFloat
	case value.StringType:
		return VecStr
	case value.BoolType:
		return VecBool
	}
	return VecBoxed
}

// Vector is one batch column in native form: exactly one payload slice is
// active (per Kind), indexed by batch position. For the typed kinds, Nulls
// marks NULL rows; a nil Nulls means no row is NULL. The exported slices
// let kernels and storage fillers loop over raw memory; everything else
// should go through ValueAt/NullAt.
type Vector struct {
	Kind   VecKind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  []bool
	Boxed  []value.Value

	// owned marks payloads drawn from the slab pools (reusable in place
	// and returned by Release), as opposed to zero-copy views of storage.
	owned bool
}

// NullAt reports whether the row is NULL.
func (v *Vector) NullAt(i int) bool {
	if v.Kind == VecBoxed {
		return v.Boxed[i].IsNull()
	}
	return v.Nulls != nil && v.Nulls[i]
}

// ValueAt boxes the row as a value.Value.
func (v *Vector) ValueAt(i int) value.Value {
	switch v.Kind {
	case VecBoxed:
		return v.Boxed[i]
	case VecInt:
		if v.Nulls != nil && v.Nulls[i] {
			return value.Null
		}
		return value.Int(v.Ints[i])
	case VecFloat:
		if v.Nulls != nil && v.Nulls[i] {
			return value.Null
		}
		return value.Float(v.Floats[i])
	case VecStr:
		if v.Nulls != nil && v.Nulls[i] {
			return value.Null
		}
		return value.String(v.Strs[i])
	default: // VecBool
		if v.Nulls != nil && v.Nulls[i] {
			return value.Null
		}
		return value.Bool(v.Bools[i])
	}
}

// SetIntView makes the vector a zero-copy int64 view. vals and nulls are
// table-owned and must not be written; nulls may be nil when the caller
// knows no row is NULL.
func (v *Vector) SetIntView(vals []int64, nulls []bool) {
	v.releasePayload()
	v.Kind, v.Ints, v.Nulls, v.owned = VecInt, vals, nulls, false
}

// SetFloatView makes the vector a zero-copy float64 view.
func (v *Vector) SetFloatView(vals []float64, nulls []bool) {
	v.releasePayload()
	v.Kind, v.Floats, v.Nulls, v.owned = VecFloat, vals, nulls, false
}

// SetStrView makes the vector a zero-copy string view.
func (v *Vector) SetStrView(vals []string, nulls []bool) {
	v.releasePayload()
	v.Kind, v.Strs, v.Nulls, v.owned = VecStr, vals, nulls, false
}

// SetBoolView makes the vector a zero-copy bool view.
func (v *Vector) SetBoolView(vals []bool, nulls []bool) {
	v.releasePayload()
	v.Kind, v.Bools, v.Nulls, v.owned = VecBool, vals, nulls, false
}

// IntBuf turns the vector into an owned int64 payload of n rows (reusing
// pooled scratch when possible) and returns the value and null slices for
// the caller to fill.
func (v *Vector) IntBuf(n int) ([]int64, []bool) {
	if !v.owned || cap(v.Ints) < n {
		v.dropForOwned()
		v.Ints = getInts(n)
	}
	v.Ints = v.Ints[:n]
	v.ensureNulls(n)
	v.Kind, v.owned = VecInt, true
	return v.Ints, v.Nulls
}

// FloatBuf is IntBuf for float64 payloads.
func (v *Vector) FloatBuf(n int) ([]float64, []bool) {
	if !v.owned || cap(v.Floats) < n {
		v.dropForOwned()
		v.Floats = getFloats(n)
	}
	v.Floats = v.Floats[:n]
	v.ensureNulls(n)
	v.Kind, v.owned = VecFloat, true
	return v.Floats, v.Nulls
}

// StrBuf is IntBuf for string payloads.
func (v *Vector) StrBuf(n int) ([]string, []bool) {
	if !v.owned || cap(v.Strs) < n {
		v.dropForOwned()
		v.Strs = getStrs(n)
	}
	v.Strs = v.Strs[:n]
	v.ensureNulls(n)
	v.Kind, v.owned = VecStr, true
	return v.Strs, v.Nulls
}

// BoolBuf is IntBuf for bool payloads. The returned slices are the value
// and null masks respectively.
func (v *Vector) BoolBuf(n int) ([]bool, []bool) {
	if !v.owned || cap(v.Bools) < n {
		v.dropForOwned()
		v.Bools = getBools(n)
	}
	v.Bools = v.Bools[:n]
	v.ensureNulls(n)
	v.Kind, v.owned = VecBool, true
	return v.Bools, v.Nulls
}

// BoxedBuf turns the vector into an owned boxed payload of n rows.
func (v *Vector) BoxedBuf(n int) []value.Value {
	if !v.owned || cap(v.Boxed) < n {
		v.dropForOwned()
		v.Boxed = getBoxed(n)
	}
	v.Boxed = v.Boxed[:n]
	v.Kind, v.owned = VecBoxed, true
	return v.Boxed
}

// ensureNulls guarantees an owned null mask of n rows. The mask contents
// are whatever the caller last wrote — fillers must set every position
// they later read.
func (v *Vector) ensureNulls(n int) {
	if v.owned && cap(v.Nulls) >= n {
		v.Nulls = v.Nulls[:n]
		return
	}
	if v.owned && v.Nulls != nil {
		putBools(v.Nulls)
	}
	v.Nulls = getBools(n)
}

// dropForOwned abandons a view (or an undersized owned payload) before a
// *Buf call installs owned scratch. Undersized owned payloads go back to
// the pools; views are simply forgotten.
func (v *Vector) dropForOwned() {
	v.releasePayload()
	v.Ints, v.Floats, v.Strs, v.Bools, v.Nulls, v.Boxed = nil, nil, nil, nil, nil, nil
}

// releasePayload returns owned payloads to the slab pools.
func (v *Vector) releasePayload() {
	if !v.owned {
		return
	}
	v.owned = false
	if v.Ints != nil {
		putInts(v.Ints)
		v.Ints = nil
	}
	if v.Floats != nil {
		putFloats(v.Floats)
		v.Floats = nil
	}
	if v.Strs != nil {
		putStrs(v.Strs)
		v.Strs = nil
	}
	if v.Bools != nil {
		putBools(v.Bools)
		v.Bools = nil
	}
	if v.Nulls != nil {
		putBools(v.Nulls)
		v.Nulls = nil
	}
	if v.Boxed != nil {
		putBoxed(v.Boxed)
		v.Boxed = nil
	}
}

// Release returns the vector's owned scratch to the pools and clears it.
func (v *Vector) Release() {
	v.releasePayload()
	*v = Vector{}
}

// Broadcast fills the vector with n copies of one value, choosing the
// native kind from the value's own type so dynamic cells keep their exact
// representation (a chain step's carried columns are constant per tuple).
func (v *Vector) Broadcast(val value.Value, n int) {
	switch val.Type() {
	case value.IntType:
		vals, nulls := v.IntBuf(n)
		iv := val.AsInt()
		for i := range vals {
			vals[i], nulls[i] = iv, false
		}
	case value.FloatType:
		vals, nulls := v.FloatBuf(n)
		f, _ := val.AsFloat()
		for i := range vals {
			vals[i], nulls[i] = f, false
		}
	case value.StringType:
		vals, nulls := v.StrBuf(n)
		s := val.AsString()
		for i := range vals {
			vals[i], nulls[i] = s, false
		}
	case value.BoolType:
		vals, nulls := v.BoolBuf(n)
		b := val.AsBool()
		for i := range vals {
			vals[i], nulls[i] = b, false
		}
	default:
		cells := v.BoxedBuf(n)
		for i := range cells {
			cells[i] = val
		}
	}
}

// FillFromCells transposes n dynamically typed cells into the vector. When
// every non-NULL cell matches the declared column type the payload is
// native; the first mismatched cell falls the whole column back to the
// boxed representation, preserving each cell bit-for-bit (the chain's
// carried payload columns are typed by dataset schema but cells are
// dynamic).
func (v *Vector) FillFromCells(n int, typ value.Type, cell func(i int) value.Value) {
	boxedFallback := func() {
		cells := v.BoxedBuf(n)
		for i := 0; i < n; i++ {
			cells[i] = cell(i)
		}
	}
	switch typ {
	case value.IntType:
		vals, nulls := v.IntBuf(n)
		for i := 0; i < n; i++ {
			c := cell(i)
			switch {
			case c.IsNull():
				nulls[i] = true
			case c.Type() == value.IntType:
				vals[i], nulls[i] = c.AsInt(), false
			default:
				boxedFallback()
				return
			}
		}
	case value.FloatType:
		vals, nulls := v.FloatBuf(n)
		for i := 0; i < n; i++ {
			c := cell(i)
			switch {
			case c.IsNull():
				nulls[i] = true
			case c.Type() == value.FloatType:
				f, _ := c.AsFloat()
				vals[i], nulls[i] = f, false
			default:
				boxedFallback()
				return
			}
		}
	case value.StringType:
		vals, nulls := v.StrBuf(n)
		for i := 0; i < n; i++ {
			c := cell(i)
			switch {
			case c.IsNull():
				nulls[i] = true
			case c.Type() == value.StringType:
				vals[i], nulls[i] = c.AsString(), false
			default:
				boxedFallback()
				return
			}
		}
	case value.BoolType:
		vals, nulls := v.BoolBuf(n)
		for i := 0; i < n; i++ {
			c := cell(i)
			switch {
			case c.IsNull():
				nulls[i] = true
			case c.Type() == value.BoolType:
				vals[i], nulls[i] = c.AsBool(), false
			default:
				boxedFallback()
				return
			}
		}
	default:
		boxedFallback()
	}
}

// allPassWord is 8 mask bytes that are all 0x01: a full word of rows
// passing the compaction filter.
const allPassWord = 0x0101010101010101

// CompactTrue appends to dst the row indices in [0, n) where vals[i] is
// true and nulls[i] (when a mask is present) is not — the selection
// compaction every dense batch filter ends with. Instead of branching
// per row, it reads the two masks eight bytes at a time as uint64 words
// (a Go bool is one byte holding 0 or 1, so the pass mask is just
// vals &^ nulls) and dispatches on the word: all-zero words skip eight
// rows with one compare, all-ones words append eight indices without a
// branch per row, and mixed words walk their set bits directly. nulls
// may be nil; when non-nil it must cover [0, n).
func CompactTrue(dst []int, vals, nulls []bool, n int) []int {
	i := 0
	if n >= 8 {
		vb := unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), n)
		var nb []byte
		if nulls != nil {
			nb = unsafe.Slice((*byte)(unsafe.Pointer(&nulls[0])), n)
		}
		for ; i+8 <= n; i += 8 {
			w := binary.LittleEndian.Uint64(vb[i:])
			if nb != nil {
				w &^= binary.LittleEndian.Uint64(nb[i:])
			}
			switch w {
			case 0:
			case allPassWord:
				dst = append(dst, i, i+1, i+2, i+3, i+4, i+5, i+6, i+7)
			default:
				for ; w != 0; w &= w - 1 {
					dst = append(dst, i+(bits.TrailingZeros64(w)>>3))
				}
			}
		}
	}
	for ; i < n; i++ {
		if vals[i] && (nulls == nil || !nulls[i]) {
			dst = append(dst, i)
		}
	}
	return dst
}

// TBatch is the typed counterpart of Batch: one Vector per row slot.
// Callers fill exactly the columns a program references (Refs) — via
// zero-copy views, typed gathers, broadcasts or cell transposes — and
// SetLen to the row count. Reuse it across batches; Release returns all
// owned scratch to the pools.
type TBatch struct {
	cols   []Vector
	filled []bool
	n      int
	cap    int
}

// NewTBatch creates a typed batch with the given slot width and capacity.
func NewTBatch(width, capacity int) *TBatch {
	if capacity < 1 {
		capacity = 1
	}
	return &TBatch{cols: make([]Vector, width), filled: make([]bool, width), cap: capacity}
}

// Width returns the slot width.
func (b *TBatch) Width() int { return len(b.cols) }

// Cap returns the row capacity.
func (b *TBatch) Cap() int { return b.cap }

// Len returns the current row count.
func (b *TBatch) Len() int { return b.n }

// SetLen sets the current row count (at most Cap).
func (b *TBatch) SetLen(n int) {
	if n < 0 || n > b.cap {
		panic("eval: typed batch length out of range")
	}
	b.n = n
}

// Col returns the slot's vector for the caller to fill, marking the slot
// filled (the structural check programs run per batch).
func (b *TBatch) Col(slot int) *Vector {
	b.filled[slot] = true
	return &b.cols[slot]
}

// Release returns every owned column payload to the slab pools.
func (b *TBatch) Release() {
	for i := range b.cols {
		b.cols[i].Release()
		b.filled[i] = false
	}
}

// ResetFilled clears the fill markers so a pooled batch can be reused by
// the next query without stale columns masking the structural checks.
// Zero-copy views are dropped (they would pin table memory across
// queries); owned scratch payloads are kept for reuse.
func (b *TBatch) ResetFilled() {
	for i := range b.cols {
		if b.filled[i] && !b.cols[i].owned {
			b.cols[i] = Vector{}
		}
		b.filled[i] = false
	}
	b.n = 0
}

// Slab pools for batch scratch: selection vectors, null masks, vector
// payloads and gather buffers all come from here, so steady-state
// federated queries reuse the same slabs query after query instead of
// re-allocating per call.
type slabPool[T any] struct{ p sync.Pool }

func (s *slabPool[T]) get(n int) []T {
	if v := s.p.Get(); v != nil {
		b := *(v.(*[]T))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]T, n)
}

func (s *slabPool[T]) put(b []T) {
	if cap(b) == 0 {
		return
	}
	b = b[:0]
	s.p.Put(&b)
}

var (
	intSlabs   slabPool[int64]
	floatSlabs slabPool[float64]
	strSlabs   slabPool[string]
	boolSlabs  slabPool[bool]
	boxedSlabs slabPool[value.Value]
	selSlabs   slabPool[int]
	stateSlabs slabPool[uint8]
)

func getInts(n int) []int64     { return intSlabs.get(n) }
func putInts(b []int64)         { intSlabs.put(b) }
func getFloats(n int) []float64 { return floatSlabs.get(n) }
func putFloats(b []float64)     { floatSlabs.put(b) }
func getBools(n int) []bool     { return boolSlabs.get(n) }
func putBools(b []bool)         { boolSlabs.put(b) }
func getSel(n int) []int        { return selSlabs.get(n) }
func putSel(b []int)            { selSlabs.put(b) }
func getStates(n int) []uint8   { return stateSlabs.get(n) }
func putStates(b []uint8)       { stateSlabs.put(b) }

// String and boxed slabs are zeroed on put so pooled scratch does not pin
// result strings or values past the query that produced them.
func getStrs(n int) []string { return strSlabs.get(n) }
func putStrs(b []string) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = ""
	}
	strSlabs.put(b)
}

func getBoxed(n int) []value.Value { return boxedSlabs.get(n) }
func putBoxed(b []value.Value) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = value.Value{}
	}
	boxedSlabs.put(b)
}
