package eval

// The CI perf-regression gate: re-measure the four expression engines on
// the canonical 10k-row selective scan and fail when any engine's ns/row
// regresses more than the threshold against the checked-in trajectory
// (BENCH_scan.json at the repository root). CI runs it in the bench job:
//
//	go test ./internal/eval/ -run TestPerfRegressionGate -perf-gate-baseline "$(pwd)/BENCH_scan.json" -v
//
// The comparison is a direct ratio of ns/row medians as testing.Benchmark
// reports them (benchstat's display comparison runs alongside in CI for
// the human-readable report; the gate itself has no external dependency,
// so it cannot be skipped by a failed tool install).
//
// Override knob for noisy runners: PERF_GATE_MAX_REGRESS_PCT sets the
// allowed regression in percent (default 15). Raising it — or setting it
// to a huge value to effectively disable the gate — is a deliberate,
// documented action in the workflow run, not a silent skip. Negative
// values tighten the gate (useful to prove it fires; see the CI docs).

import (
	"encoding/json"
	"flag"
	"os"
	"strconv"
	"testing"
)

var perfGateBaseline = flag.String("perf-gate-baseline", "", "fail if any engine's ns/row regresses vs this BENCH_scan.json")

func TestPerfRegressionGate(t *testing.T) {
	if *perfGateBaseline == "" {
		t.Skip("pass -perf-gate-baseline=PATH (the checked-in BENCH_scan.json) to run the perf gate")
	}
	maxPct := 15.0
	if s := os.Getenv("PERF_GATE_MAX_REGRESS_PCT"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad PERF_GATE_MAX_REGRESS_PCT %q: %v", s, err)
		}
		maxPct = v
	}

	raw, err := os.ReadFile(*perfGateBaseline)
	if err != nil {
		t.Fatal(err)
	}
	var base benchScanFile
	if err := json.Unmarshal(raw, &base); err != nil {
		t.Fatalf("parsing baseline %s: %v", *perfGateBaseline, err)
	}
	if len(base.Engines) == 0 {
		t.Fatalf("baseline %s has no engine measurements", *perfGateBaseline)
	}

	fresh := measureScanEngines(t)
	for name, b := range base.Engines {
		got, ok := fresh[name]
		if !ok {
			t.Errorf("%s: engine present in the baseline but not measured — trajectory and gate diverged", name)
			continue
		}
		if b.NsPerRow <= 0 {
			t.Errorf("%s: baseline ns/row %v is not positive", name, b.NsPerRow)
			continue
		}
		regressPct := (got.NsPerRow - b.NsPerRow) / b.NsPerRow * 100
		t.Logf("%s: %.1f ns/row vs baseline %.1f (%+.1f%%, gate %+.1f%%)",
			name, got.NsPerRow, b.NsPerRow, regressPct, maxPct)
		if regressPct > maxPct {
			t.Errorf("%s regressed %.1f%% (%.1f -> %.1f ns/row), above the %.1f%% gate",
				name, regressPct, b.NsPerRow, got.NsPerRow, maxPct)
		}
	}
}
