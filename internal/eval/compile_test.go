package eval

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// envFromLayout builds the interpreter environment matching a layout and a
// row, so both paths resolve exactly the same names to the same values.
func envFromLayout(layout MapLayout, row []value.Value) MapEnv {
	env := MapEnv{}
	for name, slot := range layout {
		env[name] = row[slot]
	}
	return env
}

// compileAndCompare asserts the compiled program and the reference
// interpreter agree (value and error presence) on every row. A compile
// error is allowed only where the interpreter also errors on every row:
// the compiler binds eagerly, but with every column bound by the layout
// the remaining compile errors (unknown function, arity, *) are exactly
// the row-independent interpreter errors.
func compileAndCompare(t *testing.T, src string, layout MapLayout, rows [][]value.Value) {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	prog, cerr := Compile(e, layout)
	for ri, row := range rows {
		iv, ierr := Eval(e, envFromLayout(layout, row))
		if cerr != nil {
			if ierr == nil {
				t.Errorf("%q: compile failed (%v) but interpreter evaluated row %d to %v", src, cerr, ri, iv)
			}
			continue
		}
		cv, ceErr := prog.Eval(row)
		if (ierr != nil) != (ceErr != nil) {
			t.Errorf("%q row %d: interpreter err=%v, compiled err=%v", src, ri, ierr, ceErr)
			continue
		}
		if ierr != nil {
			if ierr.Error() != ceErr.Error() {
				// Error timing may legitimately reorder which side of an
				// expression reports first; presence is the contract.
				t.Logf("%q row %d: error text differs: %q vs %q", src, ri, ierr, ceErr)
			}
			continue
		}
		if !value.Equal(iv, cv) || iv.Type() != cv.Type() {
			t.Errorf("%q row %d: interpreter=%v (%v), compiled=%v (%v)", src, ri, iv, iv.Type(), cv, cv.Type())
		}
	}
}

// stdLayout is the differential tests' column universe: qualified and bare
// names over the first slots of a row.
var stdLayout = MapLayout{
	"O.type":   0,
	"O.i_flux": 1,
	"T.i_flux": 2,
	"O.dec":    3,
	"name":     4,
	"n":        5,
	"x":        6,
}

func stdRows() [][]value.Value {
	rows := [][]value.Value{
		{value.String("GALAXY"), value.Float(12.5), value.Float(9), value.Float(-12.25), value.String("NGC 1275"), value.Int(7), value.Int(-3)},
		{value.String("STAR"), value.Float(1.5), value.Float(1.25), value.Float(89.9), value.String("M31"), value.Int(0), value.Int(math.MinInt64)},
		{value.Null, value.Null, value.Float(2), value.Null, value.Null, value.Int(-1), value.Float(math.NaN())},
		{value.String(""), value.Int(3), value.Int(3), value.Float(0), value.String("NGC%"), value.Null, value.Bool(true)},
	}
	return rows
}

func TestCompiledMatchesInterpreted(t *testing.T) {
	exprs := []string{
		// Literals, arithmetic, typing.
		"1 + 2", "7 / 2", "7 % 3", "2 * 3 + 1", "-5", "- (2.5)", "1.5e2",
		"'a' + 'b'", "TRUE", "NULL", "NULL + 1", "1 / 0", "1 % 0",
		// Comparisons and three-valued logic.
		"2 = 2", "2 <> 3", "2 < 3", "3 <= 3", "2 > 3", "2 >= 3", "2 = NULL",
		"TRUE AND FALSE", "TRUE OR FALSE", "FALSE AND NULL", "TRUE OR NULL",
		"TRUE AND NULL", "FALSE OR NULL", "NOT TRUE", "NOT NULL",
		// Column-driven forms.
		"O.type = 'GALAXY'",
		"(O.i_flux - T.i_flux) > 2",
		"O.type = 'GALAXY' AND (O.i_flux - T.i_flux) > 2",
		"ABS(O.dec) < 30.0",
		"ABS(x)",
		"x + n", "x * n", "x % n", "x / n", "-x",
		"O.type LIKE 'GAL%'",
		"name LIKE 'NGC%'",
		"name LIKE name",
		"O.type LIKE name",
		"n LIKE 'x'",
		"O.dec BETWEEN -30 AND 30",
		"n BETWEEN x AND 10",
		"O.type IN ('GALAXY', 'QSO')",
		"n IN (1, 7, NULL)",
		"n IN (x, 0)",
		"O.type IS NULL", "O.type IS NOT NULL",
		"T.type = 'GALAXY'", // falls back to the bare column? no bare "type": errors on every row
		"COALESCE(O.type, name, 'none')",
		"COALESCE(NULL, NULL)",
		"UPPER(name)", "LOWER(O.type)", "LEN(name)", "LENGTH(n)",
		"SQRT(O.i_flux)", "FLOOR(O.dec)", "CEIL(O.dec)", "CEILING(O.dec)",
		"LOG(O.i_flux)", "LOG10(O.i_flux)", "EXP(n)", "SIN(O.dec)", "COS(O.dec)",
		"RADIANS(O.dec)", "DEGREES(O.dec)", "POWER(2, n)", "POW(O.i_flux, 2)",
		"UPPER(n)", // historical wart: non-strings read as ""
		"ABS('x')", "1 = 'x'", "-'x'", "1 LIKE 'x'",
		"NOT (O.type = 'GALAXY' OR n > 3)",
		"x = 1 OR x = 2 OR n IS NULL",
		"(O.i_flux + T.i_flux) / 2 >= T.i_flux",
	}
	rows := stdRows()
	for _, src := range exprs {
		compileAndCompare(t, src, stdLayout, rows)
	}
}

func TestCompileReportsBindingErrors(t *testing.T) {
	cases := []string{
		"nosuch = 1",
		"Q.nosuch = 1",
		"NOSUCHFN(1)",
		"ABS(1, 2)",
		"POWER(1)",
		// Eager binding: the interpreter would short-circuit around the
		// unknown column, the compiler rejects the predicate up front.
		"FALSE AND nosuch = 1",
	}
	for _, src := range cases {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		if _, err := Compile(e, stdLayout); err == nil {
			t.Errorf("Compile(%q) succeeded, want error", src)
		}
	}
}

func TestCompiledConstantFolding(t *testing.T) {
	prog := mustCompile(t, "1 + 2 * 3 = 7 AND 2 < 3", stdLayout)
	if len(prog.Refs()) != 0 {
		t.Errorf("constant program references slots %v", prog.Refs())
	}
	v, err := prog.Eval(nil)
	if err != nil || !v.IsTrue() {
		t.Errorf("constant eval = %v, %v", v, err)
	}

	// Short-circuit folds are exact even when the other side cannot
	// evaluate: FALSE AND x, TRUE OR x.
	prog = mustCompile(t, "FALSE AND x = 1", stdLayout)
	if len(prog.Refs()) != 0 {
		t.Errorf("FALSE AND ... still references %v", prog.Refs())
	}

	// Constant subtrees that error keep erroring at Eval time, not at
	// Compile time, so data-dependent behavior (e.g. zero-row scans) is
	// unchanged.
	prog = mustCompile(t, "x > 0 AND 1 / 0 = 1", stdLayout)
	if _, err := prog.Eval([]value.Value{0: value.Null, 6: value.Int(1)}); err == nil {
		t.Error("1/0 should error at Eval time")
	}
}

func mustCompile(t *testing.T, src string, layout Layout) *Program {
	t.Helper()
	e, err := sqlparse.ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	prog, err := Compile(e, layout)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return prog
}

func TestNilProgram(t *testing.T) {
	prog, err := Compile(nil, stdLayout)
	if err != nil {
		t.Fatalf("Compile(nil) = %v", err)
	}
	if prog != nil {
		t.Fatalf("Compile(nil) returned a program")
	}
	ok, err := prog.EvalBool(nil)
	if err != nil || !ok {
		t.Errorf("nil program EvalBool = %v, %v; want true", ok, err)
	}
	if _, err := prog.Eval(nil); err == nil {
		t.Error("nil program Eval should error")
	}
}

func TestProgramRowWidthCheck(t *testing.T) {
	prog := mustCompile(t, "x = 1", stdLayout)
	if _, err := prog.Eval([]value.Value{value.Int(1)}); err == nil {
		t.Error("short row should error, not panic")
	}
}

func TestAbsMinInt64(t *testing.T) {
	// -math.MinInt64 overflows int64; ABS must fall back to the float
	// magnitude instead of returning a negative "absolute value".
	want := value.Float(9.223372036854775808e18)
	env := MapEnv{"x": value.Int(math.MinInt64)}
	got := evalStr(t, "ABS(x)", env)
	if got.Type() != value.FloatType || !value.Equal(got, want) {
		t.Errorf("interpreted ABS(MinInt64) = %v (%v), want %v", got, got.Type(), want)
	}
	prog := mustCompile(t, "ABS(x)", MapLayout{"x": 0})
	cv, err := prog.Eval([]value.Value{value.Int(math.MinInt64)})
	if err != nil || cv.Type() != value.FloatType || !value.Equal(cv, want) {
		t.Errorf("compiled ABS(MinInt64) = %v (%v), %v; want %v", cv, cv.Type(), err, want)
	}
	// Ordinary negatives still stay integral.
	if got := evalStr(t, "ABS(-3)", MapEnv{}); !value.Equal(got, value.Int(3)) || got.Type() != value.IntType {
		t.Errorf("ABS(-3) = %v (%v)", got, got.Type())
	}
}

func TestLikeCacheBounded(t *testing.T) {
	for i := 0; i < 4*likeCacheGen; i++ {
		pat := "unique-" + strconv.Itoa(i) + "-%"
		if _, err := likeCache.get(pat); err != nil {
			t.Fatalf("get(%q): %v", pat, err)
		}
	}
	if n := likeCache.size(); n > 2*likeCacheGen {
		t.Errorf("likeCache holds %d patterns, bound is %d", n, 2*likeCacheGen)
	}
	// A hot pattern survives generation rotation by promotion.
	if _, err := likeCache.get("hot-%"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2*likeCacheGen; i++ {
		if i%8 == 0 {
			if _, err := likeCache.get("hot-%"); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := likeCache.get("churn-" + strconv.Itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	likeCache.mu.Lock()
	_, inCur := likeCache.cur["hot-%"]
	_, inPrev := likeCache.prev["hot-%"]
	likeCache.mu.Unlock()
	if !inCur && !inPrev {
		t.Error("hot pattern was evicted despite frequent use")
	}
}

// fuzzRow derives a deterministic row of mixed-type values for the given
// slot count from a seed.
func fuzzRow(n int, seed int64) []value.Value {
	rng := rand.New(rand.NewSource(seed))
	row := make([]value.Value, n)
	strs := []string{"", "GALAXY", "NGC 1275", "a%b_c", "O'Neill", "%", "_"}
	for i := range row {
		switch rng.Intn(7) {
		case 0:
			row[i] = value.Null
		case 1:
			row[i] = value.Int(rng.Int63n(2001) - 1000)
		case 2:
			row[i] = value.Int([]int64{0, 1, -1, math.MaxInt64, math.MinInt64}[rng.Intn(5)])
		case 3:
			row[i] = value.Float(rng.NormFloat64() * 100)
		case 4:
			row[i] = value.Float([]float64{0, -0.5, math.Inf(1), math.NaN(), 1e308}[rng.Intn(5)])
		case 5:
			row[i] = value.String(strs[rng.Intn(len(strs))])
		default:
			row[i] = value.Bool(rng.Intn(2) == 0)
		}
	}
	return row
}

// FuzzCompileDifferential cross-validates the compiled engine against the
// reference interpreter on arbitrary parseable expressions and random
// rows: identical values and identical error presence, row by row. Seeds
// reuse the FuzzParseExpr corpus (the chain re-parses exactly these
// predicate strings off the wire).
func FuzzCompileDifferential(f *testing.F) {
	seeds := []string{
		`(O.i_flux - T.i_flux) > 2`,
		`1 + 2 * 3 = 7 AND 2 < 3 OR FALSE`,
		`a.name = 'O''Neill'`,
		`ABS(O.a + T.b) > 1 AND O.c IS NULL AND T.d IN (1, O.e) AND O.f BETWEEN 1 AND 2`,
		`x LIKE '%''%'`,
		`COALESCE(a, b, 1) % 2 = 0`,
		`NOT NOT NOT x`,
	}
	for _, s := range seeds {
		f.Add(s, int64(1))
	}
	for _, s := range parseExprCorpus(f) {
		f.Add(s, int64(2))
	}
	f.Fuzz(func(t *testing.T, src string, seed int64) {
		e, err := sqlparse.ParseExpr(src)
		if err != nil {
			return
		}
		cols := sqlparse.Columns(e)
		if len(cols) > 64 {
			return
		}
		layout := MapLayout{}
		for i, c := range cols {
			key := c.Column
			if c.Table != "" {
				key = c.Table + "." + c.Column
			}
			layout[key] = i
		}
		prog, cerr := Compile(e, layout)
		if cerr != nil {
			// Eager binding: with every column bound, a compile error is a
			// row-independent error (unknown function, arity, *) that the
			// interpreter may only dodge via short-circuiting. Nothing to
			// cross-check.
			return
		}
		for r := 0; r < 4; r++ {
			row := fuzzRow(len(cols), seed+int64(r))
			iv, ierr := Eval(e, envFromLayout(layout, row))
			cv, ceErr := prog.Eval(row)
			if (ierr != nil) != (ceErr != nil) {
				t.Fatalf("%q: interpreter err=%v, compiled err=%v (row %v)", src, ierr, ceErr, row)
			}
			if ierr == nil && (!value.Equal(iv, cv) || iv.Type() != cv.Type()) {
				t.Fatalf("%q: interpreter=%v (%v), compiled=%v (%v) (row %v)", src, iv, iv.Type(), cv, cv.Type(), row)
			}
		}
	})
}

// parseExprCorpus loads the checked-in FuzzParseExpr corpus inputs so the
// differential fuzzer starts from every expression shape the parser
// fuzzing has already found interesting.
func parseExprCorpus(f *testing.F) []string {
	dir := filepath.Join("..", "sqlparse", "testdata", "fuzz", "FuzzParseExpr")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, ent := range entries {
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if !strings.HasPrefix(line, "string(") || !strings.HasSuffix(line, ")") {
				continue
			}
			if s, err := strconv.Unquote(line[len("string(") : len(line)-1]); err == nil {
				out = append(out, s)
			}
		}
	}
	return out
}

// benchExpr is a representative chain-step predicate: residual type and
// flux cuts plus a LIKE, the shapes §5.3 evaluates per candidate.
const benchExpr = `O.type = 'GALAXY' AND (O.i_flux - T.i_flux) > 2 AND ABS(O.dec) < 30.0 AND name LIKE 'NGC%'`

func benchRow() []value.Value {
	return []value.Value{
		value.String("GALAXY"), value.Float(12.5), value.Float(9),
		value.Float(-12.25), value.String("NGC 1275"), value.Int(7), value.Int(-3),
	}
}

// BenchmarkInterpretedExpr is the historical per-candidate path: AST walk
// with Env lookups (environment pre-built; the real sites also paid a
// fresh MapEnv per tuple on top of this).
func BenchmarkInterpretedExpr(b *testing.B) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		b.Fatal(err)
	}
	env := envFromLayout(stdLayout, benchRow())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := EvalBool(e, env)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}

// BenchmarkCompiledExpr is the compiled path: slot reads through a
// closure tree, no maps, no per-row allocation.
func BenchmarkCompiledExpr(b *testing.B) {
	e, err := sqlparse.ParseExpr(benchExpr)
	if err != nil {
		b.Fatal(err)
	}
	prog, err := Compile(e, stdLayout)
	if err != nil {
		b.Fatal(err)
	}
	row := benchRow()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := prog.EvalBool(row)
		if err != nil || !ok {
			b.Fatal(ok, err)
		}
	}
}
