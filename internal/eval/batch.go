package eval

// This file is the vectorized third engine of the expression stack. Eval
// (eval.go) interprets the AST row by row; Compile (compile.go) turns it
// into a closure tree evaluated against one scratch row; CompileBatch turns
// it into a program evaluated over *column slices* — one []value.Value per
// row slot — with a selection vector of active row positions. (The typed
// fourth engine, typed.go, has since taken over the production scan
// sites; this boxed engine remains the cross-validation reference the
// four-way differential harness holds it to.) Scan sites
// gather candidate rows into fixed-size batches (BatchSize, default 1024),
// run the WHERE program once per batch, and only then materialize the
// surviving rows, so the per-row cost collapses to tight slice loops
// instead of a closure call per expression node per row.
//
// The execution model:
//
//   - A Batch holds up to Cap() rows in column-major order. Callers fill
//     only the columns in Program.Refs() (Col allocates lazily) and SetLen
//     to the row count.
//   - A selection vector is a strictly increasing []int of batch positions.
//     Filter reduces it to the rows where the predicate is TRUE. AND/OR
//     spines are flattened into n-ary nodes that carry one accumulator and
//     a shrinking "live" selection: each conjunct is evaluated only at the
//     rows still undecided after the previous ones — exactly the rows the
//     scalar engine's short-circuit would have reached it on — and decided
//     rows are never rewritten.
//   - Comparisons and arithmetic run typed kernels: the int64/float64 and
//     string fast paths are inlined in the batch loop and odd type mixes
//     fall back to the value package per element. Scalar functions loop
//     directly over the same kernels the interpreter and scalar compiler
//     dispatch to (scalar1/scalar2), and LIKE reuses the constant-pattern
//     specializations. The remaining long tail — IN, BETWEEN, COALESCE —
//     is compiled with the scalar compiler and evaluated per selected row
//     over a gathered scratch row, so batch and scalar cannot drift on
//     kernel semantics.
//
// Error semantics mirror the row-at-a-time engines per row: evaluation
// stops at the first selected row whose scalar evaluation would error, and
// that row index is reported alongside the error (errRow). Rows before
// errRow are fully evaluated, which lets scan sites with TOP decide whether
// the row-at-a-time scan would have stopped before ever reaching the
// failing row (and suppress the error exactly when it would have). When
// several rows of a batch would error on different subexpressions, the
// reported error is the one from the lowest row, like the sequential scan;
// pipelines of several programs (local predicate, then cross predicates)
// may surface a different member's error than the interleaved scalar loop
// did, but never differ on error presence. The three-way differential
// tests and FuzzBatchDifferential in batch_test.go hold all three engines
// to agreement on values and on errRow.
//
// Programs are immutable after CompileBatch and safe for concurrent use;
// the per-evaluation scratch (result vectors, selection buffers, the
// gather row for scalar-tail nodes) lives in a BatchEval, which is NOT
// concurrency-safe — each goroutine gets its own via NewEval.

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// DefaultBatchSize is the number of rows scan sites gather per batch when
// nothing overrides it. 1024 keeps a batch's working set (a handful of
// value columns) inside the cache while amortizing per-batch overhead to
// noise.
const DefaultBatchSize = 1024

// batchSize is the process-wide batch size knob; see BatchSize.
var batchSize atomic.Int64

func init() { batchSize.Store(DefaultBatchSize) }

// BatchSize returns the row count scan sites use per evaluation batch.
func BatchSize() int { return int(batchSize.Load()) }

// SetBatchSize overrides the scan batch size (values < 1 select the
// default). It exists for tests — the golden query corpus runs the full
// portal at batch sizes {1, 3, 1024} to shake out batch-boundary bugs —
// and for tuning experiments. Concurrent queries read it atomically, but
// changing it mid-query only affects batches created afterwards.
func SetBatchSize(n int) {
	if n < 1 {
		n = DefaultBatchSize
	}
	batchSize.Store(int64(n))
}

// Batch is a column-major buffer of rows: one []value.Value per row slot,
// indexed by batch position. Callers fill the columns a program reads
// (Refs), set the length, and reuse the batch for the next chunk of rows.
type Batch struct {
	cols [][]value.Value
	n    int
	cap  int
}

// NewBatch creates a batch with the given slot width and row capacity.
// Columns are allocated lazily by Col, so wide layouts cost only what the
// programs actually reference.
func NewBatch(width, capacity int) *Batch {
	if capacity < 1 {
		capacity = 1
	}
	return &Batch{cols: make([][]value.Value, width), cap: capacity}
}

// Width returns the slot width.
func (b *Batch) Width() int { return len(b.cols) }

// Cap returns the row capacity.
func (b *Batch) Cap() int { return b.cap }

// Len returns the current row count.
func (b *Batch) Len() int { return b.n }

// SetLen sets the current row count (at most Cap).
func (b *Batch) SetLen(n int) {
	if n < 0 || n > b.cap {
		panic(fmt.Sprintf("eval: batch length %d out of range [0, %d]", n, b.cap))
	}
	b.n = n
}

// Col returns the column slice for a slot (allocating it on first use),
// always at full capacity: fill positions [0, Len).
func (b *Batch) Col(slot int) []value.Value {
	if b.cols[slot] == nil {
		b.cols[slot] = make([]value.Value, b.cap)
	}
	return b.cols[slot]
}

// bnodeFunc is a generic batch node body: it evaluates the subexpression
// for the selected rows, returning a result vector indexed by batch
// position. out is valid at every selected row below errRow; errRow is -1
// when err is nil, otherwise the first selected row whose evaluation
// failed (rows at and beyond it are not evaluated).
type bnodeFunc func(ev *BatchEval, b *Batch, sel []int) (out []value.Value, errRow int, err error)

// bexpr is one compiled batch node: either a generic node body (fn), or a
// flattened n-ary conjunction/disjunction whose members are evaluated over
// a shrinking live selection.
type bexpr struct {
	fn   bnodeFunc
	and  []bexpr
	or   []bexpr
	vec  int // accumulator vector id for n-ary nodes
	live int // live-selection buffer id for n-ary nodes
}

func (n *bexpr) eval(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
	switch {
	case n.and != nil:
		return n.evalAnd(ev, b, sel)
	case n.or != nil:
		return n.evalOr(ev, b, sel)
	default:
		return n.fn(ev, b, sel)
	}
}

// evalAnd evaluates a flattened conjunction. The accumulator starts as the
// first member's values; each later member is evaluated only at the rows
// whose accumulated value is not BOOL FALSE — precisely the rows the
// scalar engine's short-circuit would have reached it on — and folded in
// with Kleene AND. A member's failure truncates the live set to the rows
// before it and evaluation continues, so the reported error is the one
// from the lowest row, exactly as the sequential scan surfaces it.
func (n *bexpr) evalAnd(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
	acc := ev.vecs[n.vec]
	live := ev.sels[n.live][:0]
	c0, errRow, err := n.and[0].eval(ev, b, sel)
	for _, r := range selBefore(sel, errRow) {
		v := c0[r]
		acc[r] = v
		if v.Type() == value.BoolType && !v.AsBool() {
			continue
		}
		live = append(live, r)
	}
	for i := 1; i < len(n.and); i++ {
		if len(live) == 0 {
			break
		}
		vo, cer, cerr := n.and[i].eval(ev, b, live)
		if cerr != nil {
			// cer is a live row, so strictly below any previous bound.
			errRow, err = cer, cerr
			live = selBefore(live, cer)
		}
		w := 0
		for _, r := range live {
			v := value.And(acc[r], vo[r])
			acc[r] = v
			if v.Type() == value.BoolType && !v.AsBool() {
				continue
			}
			live[w] = r
			w++
		}
		live = live[:w]
	}
	return acc, errRow, err
}

// evalOr is evalAnd's dual: members run at the rows whose accumulated
// value is not TRUE, folding in with Kleene OR.
func (n *bexpr) evalOr(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
	acc := ev.vecs[n.vec]
	live := ev.sels[n.live][:0]
	c0, errRow, err := n.or[0].eval(ev, b, sel)
	for _, r := range selBefore(sel, errRow) {
		v := c0[r]
		acc[r] = v
		if v.IsTrue() {
			continue
		}
		live = append(live, r)
	}
	for i := 1; i < len(n.or); i++ {
		if len(live) == 0 {
			break
		}
		vo, cer, cerr := n.or[i].eval(ev, b, live)
		if cerr != nil {
			errRow, err = cer, cerr
			live = selBefore(live, cer)
		}
		w := 0
		for _, r := range live {
			v := value.Or(acc[r], vo[r])
			acc[r] = v
			if v.IsTrue() {
				continue
			}
			live[w] = r
			w++
		}
		live = live[:w]
	}
	return acc, errRow, err
}

// BatchProgram is a compiled batch expression. Like Program it is
// immutable and safe for concurrent use; all mutable evaluation state
// lives in a BatchEval.
type BatchProgram struct {
	root   bexpr
	refs   []int
	width  int
	nVec   int
	nSel   int
	consts []constFill
}

// constFill records a constant vector to pre-fill when a BatchEval is
// created, so constant subtrees cost nothing per batch.
type constFill struct {
	vec int
	v   value.Value
}

// BatchEval is the per-goroutine scratch for evaluating one BatchProgram:
// one result vector per node, live-selection buffers for AND/OR, and the
// gathered row scalar-tail nodes evaluate over. Reuse it across batches;
// never share it between goroutines.
type BatchEval struct {
	vecs [][]value.Value
	sels [][]int
	row  []value.Value
	seq  []int
	out  []int
}

// NewEval allocates evaluation scratch for batches of up to capacity rows.
// It is valid on a nil program (the scratch still provides Seq for
// callers that batch without a predicate).
func (p *BatchProgram) NewEval(capacity int) *BatchEval {
	if capacity < 1 {
		capacity = 1
	}
	ev := &BatchEval{
		seq: make([]int, capacity),
		out: make([]int, 0, capacity),
	}
	for i := range ev.seq {
		ev.seq[i] = i
	}
	if p == nil {
		return ev
	}
	ev.vecs = make([][]value.Value, p.nVec)
	for i := range ev.vecs {
		ev.vecs[i] = make([]value.Value, capacity)
	}
	ev.sels = make([][]int, p.nSel)
	for i := range ev.sels {
		ev.sels[i] = make([]int, 0, capacity)
	}
	ev.row = make([]value.Value, p.width)
	for _, c := range p.consts {
		vec := ev.vecs[c.vec]
		for i := range vec {
			vec[i] = c.v
		}
	}
	return ev
}

// Seq returns the identity selection [0, n): every row of a batch active.
func (ev *BatchEval) Seq(n int) []int { return ev.seq[:n] }

// CompileBatch compiles the expression into a batch program against the
// layout. A nil expression compiles to a nil program, whose Filter passes
// every row (the semantics of an absent WHERE clause). Binding errors
// (unknown columns, functions, arities) surface here, exactly as with
// Compile.
func CompileBatch(e sqlparse.Expr, layout Layout) (*BatchProgram, error) {
	if e == nil {
		return nil, nil
	}
	c := &batchCompiler{layout: layout, refs: map[int]bool{}}
	root, _, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	p := &BatchProgram{root: *root, nVec: c.nVec, nSel: c.nSel, consts: c.consts}
	for s := range c.refs {
		p.refs = append(p.refs, s)
		if s+1 > p.width {
			p.width = s + 1
		}
	}
	sort.Ints(p.refs)
	return p, nil
}

// Refs returns the sorted batch slots the program reads; callers fill
// exactly these columns. It is nil-safe (a nil program reads nothing).
func (p *BatchProgram) Refs() []int {
	if p == nil {
		return nil
	}
	return p.refs
}

// UnionRefs merges slot lists (typically several programs' Refs) into one
// sorted, duplicate-free list — the gather list for callers that fill one
// batch for a pipeline of programs.
func UnionRefs(lists ...[]int) []int {
	seen := map[int]bool{}
	var out []int
	for _, refs := range lists {
		for _, s := range refs {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	sort.Ints(out)
	return out
}

// checkBatch validates that the batch covers the program's slots and that
// every referenced column was filled, once per batch instead of per row.
func (p *BatchProgram) checkBatch(b *Batch) error {
	if b.Width() < p.width {
		return fmt.Errorf("eval: batch has %d slots, program reads slot %d", b.Width(), p.width-1)
	}
	for _, s := range p.refs {
		if b.cols[s] == nil {
			return fmt.Errorf("eval: batch slot %d referenced by program but never filled", s)
		}
	}
	return nil
}

// Filter evaluates the program as a predicate over the selected rows and
// returns the rows where it is TRUE (NULL counts as false, as in a WHERE
// clause). The returned selection is owned by ev and valid until its next
// use. A nil program passes the selection through unchanged.
//
// On error, errRow is the first selected row whose evaluation failed and
// the returned selection holds the passing rows before it — enough for
// TOP-style callers to decide whether a row-at-a-time scan would have
// stopped before the failure. errRow is -1 when err is nil, or when the
// batch itself was malformed (an unfilled referenced column), which is
// never suppressible.
func (p *BatchProgram) Filter(ev *BatchEval, b *Batch, sel []int) (passed []int, errRow int, err error) {
	if p == nil {
		return sel, -1, nil
	}
	if err := p.checkBatch(b); err != nil {
		return nil, -1, err
	}
	out, errRow, err := p.root.eval(ev, b, sel)
	passed = ev.out[:0]
	for _, r := range selBefore(sel, errRow) {
		if out[r].IsTrue() {
			passed = append(passed, r)
		}
	}
	return passed, errRow, err
}

// EvalVec evaluates a value-producing program (projections, sort keys)
// over the selected rows. The result vector is indexed by batch position
// and valid at every selected row; on error it is valid at selected rows
// before errRow. The vector is owned by ev (or aliases a batch column for
// bare column references) and valid until the next evaluation.
func (p *BatchProgram) EvalVec(ev *BatchEval, b *Batch, sel []int) (out []value.Value, errRow int, err error) {
	if p == nil {
		return nil, -1, fmt.Errorf("eval: nil batch program")
	}
	if err := p.checkBatch(b); err != nil {
		return nil, -1, err
	}
	return p.root.eval(ev, b, sel)
}

// selBefore truncates an ascending selection to the rows before errRow
// (errRow < 0 means no error: the whole selection is live).
func selBefore(sel []int, errRow int) []int {
	if errRow < 0 {
		return sel
	}
	i := sort.SearchInts(sel, errRow)
	return sel[:i]
}

// batchCompiler builds the node tree, handing out result-vector and
// selection-buffer ids that NewEval sizes the scratch arena from.
type batchCompiler struct {
	layout Layout
	refs   map[int]bool
	nVec   int
	nSel   int
	consts []constFill
}

func (c *batchCompiler) newVec() int { id := c.nVec; c.nVec++; return id }
func (c *batchCompiler) newSel() int { id := c.nSel; c.nSel++; return id }

// constVal is the folded outcome of a row-independent subtree: a value, or
// an error that must keep surfacing at evaluation time (first selected
// row), never at compile time — mirroring the scalar compiler's fold.
type constVal struct {
	v   value.Value
	err error
}

// constNode materializes a folded constant as a batch node.
func (c *batchCompiler) constNode(cv constVal) (*bexpr, *constVal, error) {
	if cv.err != nil {
		err := cv.err
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			if len(sel) == 0 {
				return nil, -1, nil
			}
			return nil, sel[0], err
		}}, &cv, nil
	}
	id := c.newVec()
	c.consts = append(c.consts, constFill{vec: id, v: cv.v})
	return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
		return ev.vecs[id], -1, nil
	}}, &cv, nil
}

// foldConst evaluates a row-independent subtree once through the scalar
// compiler (whose fold semantics are the reference) and freezes the
// outcome.
func (c *batchCompiler) foldConst(e sqlparse.Expr) (*bexpr, *constVal, error) {
	sub := &compiler{layout: c.layout, refs: map[int]bool{}}
	n, _, err := sub.compile(e)
	if err != nil {
		return nil, nil, err
	}
	v, verr := n(nil)
	return c.constNode(constVal{v: v, err: verr})
}

// scalarTail compiles the subtree with the scalar compiler and evaluates
// it per selected row over a gathered scratch row: the long-tail path
// (IN, BETWEEN, COALESCE, dynamic-arity functions) reuses the scalar
// kernels verbatim.
func (c *batchCompiler) scalarTail(e sqlparse.Expr) (*bexpr, *constVal, error) {
	sub := &compiler{layout: c.layout, refs: map[int]bool{}}
	n, isConst, err := sub.compile(e)
	if err != nil {
		return nil, nil, err
	}
	if isConst {
		v, verr := n(nil)
		return c.constNode(constVal{v: v, err: verr})
	}
	gather := make([]int, 0, len(sub.refs))
	for s := range sub.refs {
		gather = append(gather, s)
		c.refs[s] = true
	}
	sort.Ints(gather)
	id := c.newVec()
	return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
		out := ev.vecs[id]
		for _, r := range sel {
			for _, s := range gather {
				ev.row[s] = b.cols[s][r]
			}
			v, err := n(ev.row)
			if err != nil {
				return out, r, err
			}
			out[r] = v
		}
		return out, -1, nil
	}}, nil, nil
}

// compile returns the batch node for e and, when the subtree is
// row-independent, its folded constant.
func (c *batchCompiler) compile(e sqlparse.Expr) (*bexpr, *constVal, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.BoolLit, *sqlparse.NullLit:
		return c.foldConst(e)

	case *sqlparse.ColumnRef:
		slot, err := c.layout.Slot(n.Table, n.Column)
		if err != nil {
			return nil, nil, err
		}
		c.refs[slot] = true
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			return b.cols[slot], -1, nil
		}}, nil, nil

	case *sqlparse.UnaryExpr:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, nil, err
		}
		if xc != nil {
			return c.foldConst(e)
		}
		id := c.newVec()
		if n.Op == "NOT" {
			return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
				xo, er, xerr := x.eval(ev, b, sel)
				out := ev.vecs[id]
				for _, r := range selBefore(sel, er) {
					out[r] = value.Not(xo[r])
				}
				return out, er, xerr
			}}, nil, nil
		}
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			xo, er, xerr := x.eval(ev, b, sel)
			out := ev.vecs[id]
			for _, r := range selBefore(sel, er) {
				v, verr := value.Neg(xo[r])
				if verr != nil {
					return out, r, verr
				}
				out[r] = v
			}
			return out, er, xerr
		}}, nil, nil

	case *sqlparse.IsNull:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, nil, err
		}
		if xc != nil {
			return c.foldConst(e)
		}
		id := c.newVec()
		negated := n.Negated
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			xo, er, xerr := x.eval(ev, b, sel)
			out := ev.vecs[id]
			for _, r := range selBefore(sel, er) {
				out[r] = value.Bool(xo[r].IsNull() != negated)
			}
			return out, er, xerr
		}}, nil, nil

	case *sqlparse.BinaryExpr:
		return c.compileBinary(n)

	case *sqlparse.FuncCall:
		return c.compileFunc(n)

	case *sqlparse.InList, *sqlparse.Between:
		return c.scalarTail(e)

	case *sqlparse.Star:
		return nil, nil, fmt.Errorf("eval: * is not valid in an expression")
	}
	return nil, nil, fmt.Errorf("eval: unsupported expression %T", e)
}

func (c *batchCompiler) compileBinary(n *sqlparse.BinaryExpr) (*bexpr, *constVal, error) {
	l, lc, err := c.compile(n.L)
	if err != nil {
		return nil, nil, err
	}

	// Mirror the scalar compiler's decided-left AND/OR fold exactly: the
	// dead side is still compiled (binding errors must not hide behind a
	// constant guard) but into a scratch ref set.
	if lc != nil && (n.Op == "AND" || n.Op == "OR") {
		var decided *constVal
		switch {
		case lc.err != nil:
			decided = &constVal{err: lc.err}
		case n.Op == "AND" && lc.v.Type() == value.BoolType && !lc.v.AsBool():
			decided = &constVal{v: value.Bool(false)}
		case n.Op == "OR" && lc.v.IsTrue():
			decided = &constVal{v: value.Bool(true)}
		}
		if decided != nil {
			sub := &compiler{layout: c.layout, refs: map[int]bool{}}
			if _, _, err := sub.compile(n.R); err != nil {
				return nil, nil, err
			}
			return c.constNode(*decided)
		}
	}

	r, rc, err := c.compile(n.R)
	if err != nil {
		return nil, nil, err
	}
	if lc != nil && rc != nil {
		return c.foldConst(n)
	}

	switch n.Op {
	case "AND":
		// Flatten only the left spine: evalAnd's left fold then reproduces
		// the scalar engine's nesting exactly. The right side must stay a
		// single member even when it is itself an AND — value.And is not
		// associative once non-bool operands mix with NULL (And(5, TRUE) is
		// FALSE but And(5, NULL) is NULL), so splicing a right-nested AND
		// would re-associate and diverge from the row-at-a-time engines on
		// both values and error presence.
		members := append(flattenAnd(l), *r)
		return &bexpr{and: members, vec: c.newVec(), live: c.newSel()}, nil, nil
	case "OR":
		// OR may flatten both sides: value.Or treats every non-TRUE,
		// non-NULL operand uniformly as FALSE, so it is associative over
		// the full value domain, and the flattened evaluation set (rows
		// whose accumulator is not yet TRUE) is identical to the nested
		// short-circuit's.
		members := append(flattenOr(l), flattenOr(r)...)
		return &bexpr{or: members, vec: c.newVec(), live: c.newSel()}, nil, nil
	case "+", "-", "*", "/", "%":
		return c.arithNode(l, r, n.Op), nil, nil
	case "=", "<>", "<", "<=", ">", ">=":
		return c.cmpNode(l, r, n.Op), nil, nil
	case "LIKE":
		return c.likeNode(l, r, rc), nil, nil
	}
	return nil, nil, fmt.Errorf("eval: unknown operator %q", n.Op)
}

func flattenAnd(n *bexpr) []bexpr {
	if n.and != nil {
		return n.and
	}
	return []bexpr{*n}
}

func flattenOr(n *bexpr) []bexpr {
	if n.or != nil {
		return n.or
	}
	return []bexpr{*n}
}

// cmpOpKind maps a comparison operator to a loop-invariant discriminator,
// so the batch loop branches on an integer the predictor locks onto
// instead of calling a predicate closure per row.
func cmpOpKind(op string) uint8 {
	switch op {
	case "=":
		return 0
	case "<>":
		return 1
	case "<":
		return 2
	case "<=":
		return 3
	case ">":
		return 4
	default: // ">="
		return 5
	}
}

func cmpKindHolds(kind uint8, c int) bool {
	switch kind {
	case 0:
		return c == 0
	case 1:
		return c != 0
	case 2:
		return c < 0
	case 3:
		return c <= 0
	case 4:
		return c > 0
	default:
		return c >= 0
	}
}

// binOperands evaluates a binary node's operands with the scalar engine's
// per-row order: the right side runs only at rows where the left side
// succeeded, and the reported failure is the one from the lowest row.
func binOperands(ev *BatchEval, b *Batch, sel []int, l, r *bexpr) (lo, ro []value.Value, bounded []int, errRow int, err error) {
	lo, ler, lerr := l.eval(ev, b, sel)
	selEval := selBefore(sel, ler)
	ro, rer, rerr := r.eval(ev, b, selEval)
	errRow, err = ler, lerr
	if rerr != nil {
		// selEval only holds rows before ler, so rer < ler.
		errRow, err = rer, rerr
	}
	return lo, ro, selBefore(sel, errRow), errRow, err
}

// cmpNode is the typed comparison kernel: the numeric path (int64/float64,
// mixed) and the string path are inlined — including value.Compare's float
// widening of int64 operands, NaN-compares-equal behavior and NULL →
// UNKNOWN — and anything else falls back to value.Compare per element.
func (c *batchCompiler) cmpNode(l, r *bexpr, op string) *bexpr {
	kind := cmpOpKind(op)
	id := c.newVec()
	return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
		lo, ro, rows, errRow, err := binOperands(ev, b, sel, l, r)
		out := ev.vecs[id]
		for _, rw := range rows {
			la, ra := lo[rw], ro[rw]
			if la.IsNull() || ra.IsNull() {
				out[rw] = value.Null
				continue
			}
			lf, lok := la.AsFloat()
			rf, rok := ra.AsFloat()
			if lok && rok {
				cv := 0
				if lf < rf {
					cv = -1
				} else if lf > rf {
					cv = 1
				}
				out[rw] = value.Bool(cmpKindHolds(kind, cv))
				continue
			}
			if la.Type() == value.StringType && ra.Type() == value.StringType {
				ls, rs := la.AsString(), ra.AsString()
				cv := 0
				if ls < rs {
					cv = -1
				} else if ls > rs {
					cv = 1
				}
				out[rw] = value.Bool(cmpKindHolds(kind, cv))
				continue
			}
			cv, ok, cerr := value.Compare(la, ra)
			if cerr != nil {
				return out, rw, cerr
			}
			if !ok {
				out[rw] = value.Null
				continue
			}
			out[rw] = value.Bool(cmpKindHolds(kind, cv))
		}
		return out, errRow, err
	}}
}

// arithNode is the typed arithmetic kernel: int64 and float64 fast paths
// inlined (matching value.Arith's typing rules — integer + - * stay
// integral with wraparound, / is always float and errors on a zero
// divisor), everything else (NULL propagation, string concatenation, type
// errors, % domain checks) falls back to value.Arith per element.
func (c *batchCompiler) arithNode(l, r *bexpr, op string) *bexpr {
	var kind uint8
	switch op {
	case "+":
		kind = 0
	case "-":
		kind = 1
	case "*":
		kind = 2
	case "/":
		kind = 3
	default: // "%"
		kind = 4
	}
	id := c.newVec()
	return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
		lo, ro, rows, errRow, err := binOperands(ev, b, sel, l, r)
		out := ev.vecs[id]
		for _, rw := range rows {
			la, ra := lo[rw], ro[rw]
			bothInt := la.Type() == value.IntType && ra.Type() == value.IntType
			switch kind {
			case 0:
				if bothInt {
					out[rw] = value.Int(la.AsInt() + ra.AsInt())
					continue
				}
			case 1:
				if bothInt {
					out[rw] = value.Int(la.AsInt() - ra.AsInt())
					continue
				}
			case 2:
				if bothInt {
					out[rw] = value.Int(la.AsInt() * ra.AsInt())
					continue
				}
			case 4:
				if bothInt && ra.AsInt() != 0 {
					out[rw] = value.Int(la.AsInt() % ra.AsInt())
					continue
				}
			}
			// For + - * an all-int pair was handled above, so reaching here
			// with bothInt means division — which is always float.
			if kind <= 3 {
				lf, lok := la.AsFloat()
				rf, rok := ra.AsFloat()
				if lok && rok {
					switch kind {
					case 0:
						out[rw] = value.Float(lf + rf)
						continue
					case 1:
						out[rw] = value.Float(lf - rf)
						continue
					case 2:
						out[rw] = value.Float(lf * rf)
						continue
					case 3:
						if rf != 0 {
							out[rw] = value.Float(lf / rf)
							continue
						}
					}
				}
			}
			v, aerr := value.Arith(op, la, ra)
			if aerr != nil {
				return out, rw, aerr
			}
			out[rw] = v
		}
		return out, errRow, err
	}}
}

// likeNode vectorizes LIKE with the scalar engine's constant-pattern
// specializations: simple shapes become direct string predicates, other
// constant patterns a precompiled regexp, and dynamic patterns loop over
// evalLike (whose bounded pattern cache both row engines share).
func (c *batchCompiler) likeNode(l, r *bexpr, rc *constVal) *bexpr {
	if rc != nil {
		switch {
		case rc.err != nil:
			// Matches the scalar compiler: a failing constant pattern makes
			// every row fail, without evaluating the left side.
			n, _, _ := c.constNode(constVal{err: rc.err})
			return n
		case rc.v.IsNull():
			id := c.newVec()
			return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
				_, er, lerr := l.eval(ev, b, sel)
				out := ev.vecs[id]
				for _, rw := range selBefore(sel, er) {
					out[rw] = value.Null
				}
				return out, er, lerr
			}}
		case rc.v.Type() == value.StringType:
			pat := rc.v.AsString()
			match := likeMatcher(pat)
			if match == nil {
				rx, err := compileLike(pat)
				if err != nil {
					break // defer the pattern error to evaluation, like the scalar engine
				}
				match = rx.MatchString
			}
			rt := rc.v.Type()
			id := c.newVec()
			return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
				lo, er, lerr := l.eval(ev, b, sel)
				out := ev.vecs[id]
				for _, rw := range selBefore(sel, er) {
					lv := lo[rw]
					if lv.IsNull() {
						out[rw] = value.Null
						continue
					}
					if lv.Type() != value.StringType {
						return out, rw, fmt.Errorf("eval: LIKE requires strings, got %v and %v", lv.Type(), rt)
					}
					out[rw] = value.Bool(match(lv.AsString()))
				}
				return out, er, lerr
			}}
		}
	}
	id := c.newVec()
	return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
		lo, ro, rows, errRow, err := binOperands(ev, b, sel, l, r)
		out := ev.vecs[id]
		for _, rw := range rows {
			v, lerr := evalLike(lo[rw], ro[rw])
			if lerr != nil {
				return out, rw, lerr
			}
			out[rw] = v
		}
		return out, errRow, err
	}}
}

// compileFunc vectorizes fixed-arity scalar functions by looping the very
// kernels the interpreter and scalar compiler dispatch to; COALESCE and
// arity errors fall back to the scalar tail (which reports the identical
// compile-time arity error).
func (c *batchCompiler) compileFunc(n *sqlparse.FuncCall) (*bexpr, *constVal, error) {
	name := strings.ToUpper(n.Name)
	if k := scalar1[name]; k != nil && len(n.Args) == 1 {
		a, ac, err := c.compile(n.Args[0])
		if err != nil {
			return nil, nil, err
		}
		if ac != nil {
			return c.foldConst(n)
		}
		id := c.newVec()
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			ao, er, aerr := a.eval(ev, b, sel)
			out := ev.vecs[id]
			for _, rw := range selBefore(sel, er) {
				v, kerr := k(ao[rw])
				if kerr != nil {
					return out, rw, kerr
				}
				out[rw] = v
			}
			return out, er, aerr
		}}, nil, nil
	}
	if k := scalar2[name]; k != nil && len(n.Args) == 2 {
		a, ac, err := c.compile(n.Args[0])
		if err != nil {
			return nil, nil, err
		}
		bb, bc, err := c.compile(n.Args[1])
		if err != nil {
			return nil, nil, err
		}
		if ac != nil && bc != nil {
			return c.foldConst(n)
		}
		id := c.newVec()
		return &bexpr{fn: func(ev *BatchEval, b *Batch, sel []int) ([]value.Value, int, error) {
			ao, bo, rows, errRow, err := binOperands(ev, b, sel, a, bb)
			out := ev.vecs[id]
			for _, rw := range rows {
				v, kerr := k(ao[rw], bo[rw])
				if kerr != nil {
					return out, rw, kerr
				}
				out[rw] = v
			}
			return out, errRow, err
		}}, nil, nil
	}
	return c.scalarTail(n)
}
