package eval

// Trace-learned batch floors: a recorded drop-out-heavy trace (full
// batches whose useful work lands in the first handful of rows) must
// teach the sizer a floor below the MinAdaptiveBatch default, short or
// balanced traces must not, and a sizer built from a trace must record
// its own observations back for the next query.

import "testing"

// dropoutTrace records n full batches of the given fill where the veto
// landed within the first few rows.
func dropoutTrace(n, filled int) *BatchTrace {
	tr := &BatchTrace{}
	for i := 0; i < n; i++ {
		tr.Record(filled, i%3) // used in {0,1,2}
	}
	return tr
}

func TestLearnFloorDropoutHeavyTrace(t *testing.T) {
	tr := dropoutTrace(64, 1024)
	if got := LearnFloor(tr.Snapshot()); got != MinLearnedFloor {
		t.Fatalf("dropout-heavy floor = %d, want %d", got, MinLearnedFloor)
	}
}

func TestLearnFloorKeepsDefault(t *testing.T) {
	// Too little evidence: fewer than minFloorTrace observations.
	short := dropoutTrace(minFloorTrace-1, 1024)
	if got := LearnFloor(short.Snapshot()); got != MinAdaptiveBatch {
		t.Fatalf("short trace floor = %d, want %d", got, MinAdaptiveBatch)
	}
	// Balanced utilization: median useful work far above the default
	// floor must not lower it.
	balanced := &BatchTrace{}
	for i := 0; i < 64; i++ {
		balanced.Record(1024, 512)
	}
	if got := LearnFloor(balanced.Snapshot()); got != MinAdaptiveBatch {
		t.Fatalf("balanced trace floor = %d, want %d", got, MinAdaptiveBatch)
	}
	// Empty trace.
	if got := LearnFloor(nil); got != MinAdaptiveBatch {
		t.Fatalf("nil trace floor = %d, want %d", got, MinAdaptiveBatch)
	}
}

func TestLearnFloorIntermediate(t *testing.T) {
	// Median used = 6 -> 2*6 = 12 -> next power of two = 16.
	tr := &BatchTrace{}
	for i := 0; i < 32; i++ {
		tr.Record(1024, 6)
	}
	if got := LearnFloor(tr.Snapshot()); got != 16 {
		t.Fatalf("median-6 floor = %d, want 16", got)
	}
}

func TestBatchSizerLearnedFloorShrink(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)

	tr := dropoutTrace(64, 1024)
	s := NewBatchSizerFromTrace(tr)
	if s.Size() != 1024 {
		t.Fatalf("start size = %d, want 1024", s.Size())
	}
	// Wasted full batches walk the threshold all the way down to the
	// learned floor, below the MinAdaptiveBatch a default sizer stops at.
	for i := 0; i < 16; i++ {
		s.Observe(s.Size(), 0)
	}
	if s.Size() != MinLearnedFloor {
		t.Fatalf("shrunk size = %d, want learned floor %d", s.Size(), MinLearnedFloor)
	}

	def := NewBatchSizer()
	for i := 0; i < 16; i++ {
		def.Observe(def.Size(), 0)
	}
	if def.Size() != MinAdaptiveBatch {
		t.Fatalf("default sizer shrunk to %d, want %d", def.Size(), MinAdaptiveBatch)
	}
}

func TestBatchSizerFloorOnlyLowers(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)

	// A balanced trace learns MinAdaptiveBatch; the sizer's floor must
	// stay there, never rise above the default.
	balanced := &BatchTrace{}
	for i := 0; i < 64; i++ {
		balanced.Record(1024, 900)
	}
	s := NewBatchSizerFromTrace(balanced)
	for i := 0; i < 16; i++ {
		s.Observe(s.Size(), 0)
	}
	if s.Size() != MinAdaptiveBatch {
		t.Fatalf("balanced-trace sizer floor = %d, want %d", s.Size(), MinAdaptiveBatch)
	}
}

func TestBatchSizerRecordsIntoTrace(t *testing.T) {
	defer SetBatchSize(DefaultBatchSize)
	SetBatchSize(1024)

	tr := &BatchTrace{}
	s := NewBatchSizerFromTrace(tr)
	s.Observe(1024, 3)
	s.Observe(1024, 700)
	s.Observe(100, 50) // partial: below threshold, not recorded
	obs := tr.Snapshot()
	if len(obs) != 2 {
		t.Fatalf("recorded %d observations, want 2", len(obs))
	}
	if obs[0] != (BatchObs{Filled: 1024, Used: 3}) || obs[1] != (BatchObs{Filled: 1024, Used: 700}) {
		t.Fatalf("recorded %v", obs)
	}

	// NewBatchSizer (no trace) must not panic or record anywhere.
	plain := NewBatchSizer()
	plain.Observe(1024, 0)
}

func TestBatchTraceRingBounded(t *testing.T) {
	tr := &BatchTrace{}
	for i := 0; i < batchTraceCap*2; i++ {
		tr.Record(1024, i)
	}
	obs := tr.Snapshot()
	if len(obs) != batchTraceCap {
		t.Fatalf("ring holds %d, want %d", len(obs), batchTraceCap)
	}
	// The ring overwrote the oldest half: every surviving Used is from
	// the second pass.
	for _, o := range obs {
		if o.Used < batchTraceCap {
			t.Fatalf("ring kept stale observation %v", o)
		}
	}
	// Ignored: non-positive fills.
	tr2 := &BatchTrace{}
	tr2.Record(0, 5)
	tr2.Record(-1, 5)
	if n := len(tr2.Snapshot()); n != 0 {
		t.Fatalf("recorded %d bogus observations", n)
	}
}
