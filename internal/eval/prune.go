package eval

// Zone-map prune analysis: given a WHERE expression, extract the top-level
// AND conjuncts of the form  column <cmp> constant  (either operand
// order; numeric constants on numeric columns, string constants on string
// columns, and LIKE patterns with a literal prefix) whose per-block
// min/max statistics can prove whole blocks of a base-table scan
// irrelevant before any kernel runs. The storage
// layer owns the block statistics; this file owns the exactness argument,
// which must match the row engines' evaluation order and error semantics:
//
//   - A conjunct that is never TRUE on a block means the AND is never TRUE
//     there, so no row of the block can pass the WHERE filter. Skipping
//     the block is value-exact for any conjunct order (AND is TRUE only
//     when every member is).
//   - Errors are the subtle part. The row engines evaluate AND left to
//     right and short-circuit on a strictly-FALSE member, so a skipped
//     block may hide an error two ways: a conjunct *before* the pruning
//     one errors on a skipped row, or the pruning conjunct is NULL on a
//     row (NULL does not short-circuit) and a *later* conjunct errors.
//     Pruning is therefore allowed when the whole predicate is statically
//     error-free (Safe) — then only values matter and "never TRUE"
//     suffices, including all-NULL blocks — or when every conjunct before
//     the pruning one is error-free (PrefixSafe) *and* the block has no
//     NULLs in the pruned column, making the conjunct strictly FALSE on
//     every row so the short-circuit provably kills everything after it.
//
// "Error-free" is a conservative static judgment over the expression and
// the base table's column types: literals, column references, IS NULL,
// NOT, AND/OR of error-free parts, comparisons whose two sides are
// statically same-class (numeric/string/bool, NULL aside), and LIKE over
// statically-string sides cannot error at evaluation time. Arithmetic
// (division by zero), functions and the scalar-tail forms are treated as
// potentially erroring.
//
// NaN disables pruning of a float block: value.Compare treats NaN as equal
// to everything (see the cmp kernels), so no range test can bound it.

import (
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Pruner is one prunable conjunct: slot <Op> Const (already normalized so
// the column is on the left; Const is the constant widened to float64,
// exactly the image the comparison kernels compare against). String
// conjuncts (IsStr) compare against Str with the same operators, plus
// OpLikePrefix for LIKE patterns with a literal prefix: any matching
// value lies in [Str, Hi) byte-wise (Hi == "" means unbounded above).
type Pruner struct {
	Slot       int
	Op         string
	Const      float64
	Str        string // string constant (IsStr); the prefix for OpLikePrefix
	Hi         string // OpLikePrefix: exclusive upper bound of the prefix range
	IsStr      bool
	PrefixSafe bool // every conjunct before this one is statically error-free
}

// OpLikePrefix marks a LIKE conjunct reduced to a byte-range test on the
// pattern's literal prefix (the text before the first % or _). Matching
// strings start with that prefix, so they sort in [prefix,
// prefixSuccessor) — a sound range even though the pattern's tail may
// reject more rows (pruning only needs never-TRUE, not exactly-TRUE).
const OpLikePrefix = "like~"

// PruneSet is the result of AnalyzePrune.
type PruneSet struct {
	Pruners []Pruner
	// Safe reports that the whole predicate is statically error-free, so a
	// block may be pruned whenever a pruner is never TRUE on it (NULLs and
	// conjunct order don't matter).
	Safe bool
}

// NeverTrueStr is NeverTrue for string conjuncts: whether the conjunct
// is FALSE-or-NULL for every non-NULL string v in [min, max] (byte-wise
// order, exactly value.Compare's string order).
func (p Pruner) NeverTrueStr(min, max string) bool {
	switch p.Op {
	case "=":
		return p.Str < min || p.Str > max
	case "<>":
		return min == p.Str && max == p.Str
	case "<":
		return min >= p.Str
	case "<=":
		return min > p.Str
	case ">":
		return max <= p.Str
	case ">=":
		return max < p.Str
	case OpLikePrefix:
		// Every match starts with the prefix, so it is >= Str and (when
		// the successor exists) < Hi.
		return max < p.Str || (p.Hi != "" && min >= p.Hi)
	}
	return false
}

// NeverTrue reports whether v <Op> Const is FALSE-or-NULL for every
// non-NULL v in [min, max] (both widened to float64). It is the block test
// the storage layer runs against its zone maps.
func (p Pruner) NeverTrue(min, max float64) bool {
	switch p.Op {
	case "=":
		return p.Const < min || p.Const > max
	case "<>":
		return min == p.Const && max == p.Const
	case "<":
		return min >= p.Const
	case "<=":
		return min > p.Const
	case ">":
		return max <= p.Const
	default: // ">="
		return max < p.Const
	}
}

// AnalyzePrune extracts the prunable conjuncts of e. layout resolves
// column references to slots (for a base-table scan these are schema
// positions) and slotType gives each slot's declared column type. A nil
// expression has no pruners.
func AnalyzePrune(e sqlparse.Expr, layout Layout, slotType func(slot int) value.Type) PruneSet {
	if e == nil {
		return PruneSet{}
	}
	return AnalyzeChainPrune([]PruneExpr{{Expr: e, Layout: layout}}, slotType,
		func(s int) (int, bool) { return s, true })
}

// PruneExpr pairs one predicate of a chain step's evaluation sequence with
// the layout it resolves column references against. The layouts of a
// sequence must map into one shared slot space (the chain steps compile
// the local predicate and the cross predicates against layouts that agree
// on every slot both can resolve).
type PruneExpr struct {
	Expr   sqlparse.Expr
	Layout Layout
}

// AnalyzeChainPrune is AnalyzePrune over a chain step's whole predicate
// sequence: the local predicate followed by the cross predicates, in the
// step's evaluation order. It extracts the conjuncts usable *before* the
// candidate gather — comparisons of a candidate-table column against a
// numeric constant — and drops everything else (the residual program is
// the full compiled predicate sequence, unchanged: zone statistics prove
// blocks dead, they never prove a surviving row's conjunct true).
//
// candCol maps a slot of the shared slot space to its candidate-table
// column index; slots that are not candidate columns (an extend step's
// carried-tuple columns) report ok=false and never produce pruners.
//
// The error-exactness argument extends the single-expression one. The
// step evaluates: local conjuncts in order, then the chi-square gate, then
// each cross predicate's conjuncts in order. The gate only filters — it
// cannot error — so it is transparent to the prefix argument, and a
// conjunct that is strictly FALSE on every row of a block still proves
// that no row of the block survives to any later conjunct (the gate can
// only remove more rows). Safe and PrefixSafe are therefore computed over
// the concatenated conjunct sequence exactly as for a single expression.
func AnalyzeChainPrune(seq []PruneExpr, slotType func(slot int) value.Type, candCol func(slot int) (col int, ok bool)) PruneSet {
	ps := PruneSet{Safe: true}
	prefixSafe := true
	for _, pe := range seq {
		if pe.Expr == nil {
			continue
		}
		a := pruneAnalyzer{layout: pe.Layout, slotType: slotType}
		for _, m := range andConjuncts(pe.Expr, nil) {
			// A pruner's PrefixSafe is taken before its own conjunct folds
			// into the running flag: it covers the conjuncts strictly
			// before it, across the whole sequence.
			if pr, ok := a.pruner(m); ok {
				if col, isCand := candCol(pr.Slot); isCand {
					pr.Slot = col
					pr.PrefixSafe = prefixSafe
					ps.Pruners = append(ps.Pruners, pr)
				}
			}
			if !a.errFree(m) {
				prefixSafe = false
				ps.Safe = false
			}
		}
	}
	return ps
}

// andConjuncts flattens the left AND spine, mirroring the engines'
// evaluation order: members(a AND b) = members(a) ++ [b].
func andConjuncts(e sqlparse.Expr, acc []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		return append(andConjuncts(b.L, acc), b.R)
	}
	return append(acc, e)
}

type pruneAnalyzer struct {
	layout   Layout
	slotType func(int) value.Type
}

// pruner matches column-vs-literal comparisons — numeric literals on
// numeric columns, string literals on string columns — plus LIKE with a
// constant pattern carrying a literal prefix.
func (a *pruneAnalyzer) pruner(e sqlparse.Expr) (Pruner, bool) {
	b, ok := e.(*sqlparse.BinaryExpr)
	if !ok {
		return Pruner{}, false
	}
	if b.Op == "LIKE" {
		return a.likePruner(b)
	}
	var flip string
	switch b.Op {
	case "=", "<>":
		flip = b.Op
	case "<":
		flip = ">"
	case "<=":
		flip = ">="
	case ">":
		flip = "<"
	case ">=":
		flip = "<="
	default:
		return Pruner{}, false
	}
	if col, lit, ok := a.colAndLit(b.L, b.R); ok {
		return Pruner{Slot: col, Op: b.Op, Const: lit}, true
	}
	if col, lit, ok := a.colAndLit(b.R, b.L); ok {
		return Pruner{Slot: col, Op: flip, Const: lit}, true
	}
	if col, lit, ok := a.colAndStrLit(b.L, b.R); ok {
		return Pruner{Slot: col, Op: b.Op, Str: lit, IsStr: true}, true
	}
	if col, lit, ok := a.colAndStrLit(b.R, b.L); ok {
		return Pruner{Slot: col, Op: flip, Str: lit, IsStr: true}, true
	}
	return Pruner{}, false
}

// likePruner reduces  stringcol LIKE 'constant pattern'  to a prunable
// range conjunct on the pattern's literal prefix. A pattern without
// wildcards is an equality test; an empty prefix (pattern starts with a
// wildcard) prunes nothing.
func (a *pruneAnalyzer) likePruner(b *sqlparse.BinaryExpr) (Pruner, bool) {
	col, pat, ok := a.colAndStrLit(b.L, b.R)
	if !ok {
		return Pruner{}, false
	}
	prefix, wild := likeLiteralPrefix(pat)
	if !wild {
		return Pruner{Slot: col, Op: "=", Str: pat, IsStr: true}, true
	}
	if prefix == "" {
		return Pruner{}, false
	}
	return Pruner{Slot: col, Op: OpLikePrefix, Str: prefix, Hi: prefixSuccessor(prefix), IsStr: true}, true
}

// likeLiteralPrefix returns the pattern text before the first wildcard
// (% or _) and whether the pattern contains a wildcard at all.
func likeLiteralPrefix(pat string) (prefix string, wild bool) {
	for i := 0; i < len(pat); i++ {
		if pat[i] == '%' || pat[i] == '_' {
			return pat[:i], true
		}
	}
	return pat, false
}

// prefixSuccessor returns the smallest string greater than every string
// with the given prefix (byte-wise), or "" when none exists (all 0xff).
func prefixSuccessor(prefix string) string {
	for i := len(prefix) - 1; i >= 0; i-- {
		if prefix[i] != 0xff {
			return prefix[:i] + string(prefix[i]+1)
		}
	}
	return ""
}

func (a *pruneAnalyzer) colAndLit(ce, le sqlparse.Expr) (slot int, lit float64, ok bool) {
	cr, ok := ce.(*sqlparse.ColumnRef)
	if !ok {
		return 0, 0, false
	}
	nl, ok := le.(*sqlparse.NumberLit)
	if !ok {
		return 0, 0, false
	}
	s, err := a.layout.Slot(cr.Table, cr.Column)
	if err != nil {
		return 0, 0, false
	}
	t := a.slotType(s)
	if t != value.IntType && t != value.FloatType {
		return 0, 0, false
	}
	// The engines' literal typing (INT for integral spellings) widens to
	// the same float64 either way.
	return s, nl.Value, true
}

// colAndStrLit is colAndLit for string-literal comparisons on string
// columns (value.Compare orders strings byte-wise, the order the string
// zone statistics are computed in).
func (a *pruneAnalyzer) colAndStrLit(ce, le sqlparse.Expr) (slot int, lit string, ok bool) {
	cr, ok := ce.(*sqlparse.ColumnRef)
	if !ok {
		return 0, "", false
	}
	sl, ok := le.(*sqlparse.StringLit)
	if !ok {
		return 0, "", false
	}
	s, err := a.layout.Slot(cr.Table, cr.Column)
	if err != nil {
		return 0, "", false
	}
	if a.slotType(s) != value.StringType {
		return 0, "", false
	}
	return s, sl.Value, true
}

// staticType returns a subexpression's statically certain value type
// (NULL aside), or ok=false when it cannot be pinned down.
func (a *pruneAnalyzer) staticType(e sqlparse.Expr) (value.Type, bool) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		return value.FloatType, true // INT vs FLOAT both land in the numeric class
	case *sqlparse.StringLit:
		return value.StringType, true
	case *sqlparse.BoolLit:
		return value.BoolType, true
	case *sqlparse.ColumnRef:
		s, err := a.layout.Slot(n.Table, n.Column)
		if err != nil {
			return value.NullType, false
		}
		t := a.slotType(s)
		if t == value.IntType {
			t = value.FloatType // same comparison class
		}
		return t, t != value.NullType
	}
	return value.NullType, false
}

// errFree reports that evaluating e can never return an error, for any
// row of the table (NULLs included).
func (a *pruneAnalyzer) errFree(e sqlparse.Expr) bool {
	switch n := e.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.BoolLit, *sqlparse.NullLit:
		return true
	case *sqlparse.ColumnRef:
		_, err := a.layout.Slot(n.Table, n.Column)
		return err == nil
	case *sqlparse.IsNull:
		return a.errFree(n.X)
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return a.errFree(n.X)
		}
		// Negation errors on strings and bools.
		t, ok := a.staticType(n.X)
		return ok && t == value.FloatType && a.errFree(n.X)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			return a.errFree(n.L) && a.errFree(n.R)
		case "=", "<>", "<", "<=", ">", ">=":
			lt, lok := a.staticType(n.L)
			rt, rok := a.staticType(n.R)
			return lok && rok && lt == rt && a.errFree(n.L) && a.errFree(n.R)
		case "LIKE":
			// LIKE is NULL-safe and its pattern compiler cannot fail (the
			// translation quotes every non-wildcard rune), so with both
			// sides statically strings it cannot error.
			lt, lok := a.staticType(n.L)
			rt, rok := a.staticType(n.R)
			return lok && rok && lt == value.StringType && rt == value.StringType &&
				a.errFree(n.L) && a.errFree(n.R)
		}
		return false // arithmetic can divide by zero or type-error
	}
	return false // functions, IN, BETWEEN, COALESCE: conservatively erroring
}
