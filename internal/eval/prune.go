package eval

// Zone-map prune analysis: given a WHERE expression, extract the top-level
// AND conjuncts of the form  column <cmp> numeric-constant  (either
// operand order) whose per-block min/max statistics can prove whole blocks
// of a base-table scan irrelevant before any kernel runs. The storage
// layer owns the block statistics; this file owns the exactness argument,
// which must match the row engines' evaluation order and error semantics:
//
//   - A conjunct that is never TRUE on a block means the AND is never TRUE
//     there, so no row of the block can pass the WHERE filter. Skipping
//     the block is value-exact for any conjunct order (AND is TRUE only
//     when every member is).
//   - Errors are the subtle part. The row engines evaluate AND left to
//     right and short-circuit on a strictly-FALSE member, so a skipped
//     block may hide an error two ways: a conjunct *before* the pruning
//     one errors on a skipped row, or the pruning conjunct is NULL on a
//     row (NULL does not short-circuit) and a *later* conjunct errors.
//     Pruning is therefore allowed when the whole predicate is statically
//     error-free (Safe) — then only values matter and "never TRUE"
//     suffices, including all-NULL blocks — or when every conjunct before
//     the pruning one is error-free (PrefixSafe) *and* the block has no
//     NULLs in the pruned column, making the conjunct strictly FALSE on
//     every row so the short-circuit provably kills everything after it.
//
// "Error-free" is a conservative static judgment over the expression and
// the base table's column types: literals, column references, IS NULL,
// NOT, AND/OR of error-free parts, and comparisons whose two sides are
// statically same-class (numeric/string/bool, NULL aside) cannot error at
// evaluation time. Arithmetic (division by zero), LIKE, functions and the
// scalar-tail forms are treated as potentially erroring.
//
// NaN disables pruning of a float block: value.Compare treats NaN as equal
// to everything (see the cmp kernels), so no range test can bound it.

import (
	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Pruner is one prunable conjunct: slot <Op> Const (already normalized so
// the column is on the left; Const is the constant widened to float64,
// exactly the image the comparison kernels compare against).
type Pruner struct {
	Slot       int
	Op         string
	Const      float64
	PrefixSafe bool // every conjunct before this one is statically error-free
}

// PruneSet is the result of AnalyzePrune.
type PruneSet struct {
	Pruners []Pruner
	// Safe reports that the whole predicate is statically error-free, so a
	// block may be pruned whenever a pruner is never TRUE on it (NULLs and
	// conjunct order don't matter).
	Safe bool
}

// NeverTrue reports whether v <Op> Const is FALSE-or-NULL for every
// non-NULL v in [min, max] (both widened to float64). It is the block test
// the storage layer runs against its zone maps.
func (p Pruner) NeverTrue(min, max float64) bool {
	switch p.Op {
	case "=":
		return p.Const < min || p.Const > max
	case "<>":
		return min == p.Const && max == p.Const
	case "<":
		return min >= p.Const
	case "<=":
		return min > p.Const
	case ">":
		return max <= p.Const
	default: // ">="
		return max < p.Const
	}
}

// AnalyzePrune extracts the prunable conjuncts of e. layout resolves
// column references to slots (for a base-table scan these are schema
// positions) and slotType gives each slot's declared column type. A nil
// expression has no pruners.
func AnalyzePrune(e sqlparse.Expr, layout Layout, slotType func(slot int) value.Type) PruneSet {
	if e == nil {
		return PruneSet{}
	}
	return AnalyzeChainPrune([]PruneExpr{{Expr: e, Layout: layout}}, slotType,
		func(s int) (int, bool) { return s, true })
}

// PruneExpr pairs one predicate of a chain step's evaluation sequence with
// the layout it resolves column references against. The layouts of a
// sequence must map into one shared slot space (the chain steps compile
// the local predicate and the cross predicates against layouts that agree
// on every slot both can resolve).
type PruneExpr struct {
	Expr   sqlparse.Expr
	Layout Layout
}

// AnalyzeChainPrune is AnalyzePrune over a chain step's whole predicate
// sequence: the local predicate followed by the cross predicates, in the
// step's evaluation order. It extracts the conjuncts usable *before* the
// candidate gather — comparisons of a candidate-table column against a
// numeric constant — and drops everything else (the residual program is
// the full compiled predicate sequence, unchanged: zone statistics prove
// blocks dead, they never prove a surviving row's conjunct true).
//
// candCol maps a slot of the shared slot space to its candidate-table
// column index; slots that are not candidate columns (an extend step's
// carried-tuple columns) report ok=false and never produce pruners.
//
// The error-exactness argument extends the single-expression one. The
// step evaluates: local conjuncts in order, then the chi-square gate, then
// each cross predicate's conjuncts in order. The gate only filters — it
// cannot error — so it is transparent to the prefix argument, and a
// conjunct that is strictly FALSE on every row of a block still proves
// that no row of the block survives to any later conjunct (the gate can
// only remove more rows). Safe and PrefixSafe are therefore computed over
// the concatenated conjunct sequence exactly as for a single expression.
func AnalyzeChainPrune(seq []PruneExpr, slotType func(slot int) value.Type, candCol func(slot int) (col int, ok bool)) PruneSet {
	ps := PruneSet{Safe: true}
	prefixSafe := true
	for _, pe := range seq {
		if pe.Expr == nil {
			continue
		}
		a := pruneAnalyzer{layout: pe.Layout, slotType: slotType}
		for _, m := range andConjuncts(pe.Expr, nil) {
			// A pruner's PrefixSafe is taken before its own conjunct folds
			// into the running flag: it covers the conjuncts strictly
			// before it, across the whole sequence.
			if pr, ok := a.pruner(m); ok {
				if col, isCand := candCol(pr.Slot); isCand {
					pr.Slot = col
					pr.PrefixSafe = prefixSafe
					ps.Pruners = append(ps.Pruners, pr)
				}
			}
			if !a.errFree(m) {
				prefixSafe = false
				ps.Safe = false
			}
		}
	}
	return ps
}

// andConjuncts flattens the left AND spine, mirroring the engines'
// evaluation order: members(a AND b) = members(a) ++ [b].
func andConjuncts(e sqlparse.Expr, acc []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == "AND" {
		return append(andConjuncts(b.L, acc), b.R)
	}
	return append(acc, e)
}

type pruneAnalyzer struct {
	layout   Layout
	slotType func(int) value.Type
}

// pruner matches column-vs-numeric-literal comparisons on numeric columns.
func (a *pruneAnalyzer) pruner(e sqlparse.Expr) (Pruner, bool) {
	b, ok := e.(*sqlparse.BinaryExpr)
	if !ok {
		return Pruner{}, false
	}
	var flip string
	switch b.Op {
	case "=", "<>":
		flip = b.Op
	case "<":
		flip = ">"
	case "<=":
		flip = ">="
	case ">":
		flip = "<"
	case ">=":
		flip = "<="
	default:
		return Pruner{}, false
	}
	if col, lit, ok := a.colAndLit(b.L, b.R); ok {
		return Pruner{Slot: col, Op: b.Op, Const: lit}, true
	}
	if col, lit, ok := a.colAndLit(b.R, b.L); ok {
		return Pruner{Slot: col, Op: flip, Const: lit}, true
	}
	return Pruner{}, false
}

func (a *pruneAnalyzer) colAndLit(ce, le sqlparse.Expr) (slot int, lit float64, ok bool) {
	cr, ok := ce.(*sqlparse.ColumnRef)
	if !ok {
		return 0, 0, false
	}
	nl, ok := le.(*sqlparse.NumberLit)
	if !ok {
		return 0, 0, false
	}
	s, err := a.layout.Slot(cr.Table, cr.Column)
	if err != nil {
		return 0, 0, false
	}
	t := a.slotType(s)
	if t != value.IntType && t != value.FloatType {
		return 0, 0, false
	}
	// The engines' literal typing (INT for integral spellings) widens to
	// the same float64 either way.
	return s, nl.Value, true
}

// staticType returns a subexpression's statically certain value type
// (NULL aside), or ok=false when it cannot be pinned down.
func (a *pruneAnalyzer) staticType(e sqlparse.Expr) (value.Type, bool) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		return value.FloatType, true // INT vs FLOAT both land in the numeric class
	case *sqlparse.StringLit:
		return value.StringType, true
	case *sqlparse.BoolLit:
		return value.BoolType, true
	case *sqlparse.ColumnRef:
		s, err := a.layout.Slot(n.Table, n.Column)
		if err != nil {
			return value.NullType, false
		}
		t := a.slotType(s)
		if t == value.IntType {
			t = value.FloatType // same comparison class
		}
		return t, t != value.NullType
	}
	return value.NullType, false
}

// errFree reports that evaluating e can never return an error, for any
// row of the table (NULLs included).
func (a *pruneAnalyzer) errFree(e sqlparse.Expr) bool {
	switch n := e.(type) {
	case *sqlparse.NumberLit, *sqlparse.StringLit, *sqlparse.BoolLit, *sqlparse.NullLit:
		return true
	case *sqlparse.ColumnRef:
		_, err := a.layout.Slot(n.Table, n.Column)
		return err == nil
	case *sqlparse.IsNull:
		return a.errFree(n.X)
	case *sqlparse.UnaryExpr:
		if n.Op == "NOT" {
			return a.errFree(n.X)
		}
		// Negation errors on strings and bools.
		t, ok := a.staticType(n.X)
		return ok && t == value.FloatType && a.errFree(n.X)
	case *sqlparse.BinaryExpr:
		switch n.Op {
		case "AND", "OR":
			return a.errFree(n.L) && a.errFree(n.R)
		case "=", "<>", "<", "<=", ">", ">=":
			lt, lok := a.staticType(n.L)
			rt, rok := a.staticType(n.R)
			return lok && rok && lt == rt && a.errFree(n.L) && a.errFree(n.R)
		}
		return false // arithmetic can divide by zero or type-error; LIKE can type-error
	}
	return false // functions, IN, BETWEEN, COALESCE: conservatively erroring
}
