package eval

// This file is the compiled half of the expression engine. Eval (eval.go)
// walks the AST per row through Env interface lookups; Compile resolves
// every column reference to an integer slot against a Layout once, at plan
// time, type-checks what can be checked statically (function names,
// arities, column bindings), folds constant subtrees, precompiles constant
// LIKE patterns, and returns a closure-tree Program evaluated as
// prog.Eval(row []value.Value) with no maps, no string lookups, and no
// per-row allocation.
//
// The interpreter remains the reference semantics: every Program node
// mirrors the corresponding Eval case (including AND/OR short-circuiting
// around errors and NULL propagation), both paths share the scalar
// function kernels, and the differential tests in compile_test.go assert
// agreement over random rows. The one deliberate divergence is error
// timing: a predicate that can never evaluate (unknown column, unknown
// function, wrong arity) fails at Compile time — before a scan or chain
// step starts — where the interpreter would fail on the first row it
// touches. Constant subtrees whose evaluation errors (e.g. 1/0) keep
// failing at Eval time so that data-dependent behavior, such as a scan
// over zero matching rows, is unchanged.

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Layout resolves column references to slots of the row passed to
// Program.Eval. Implementations decide qualifier semantics (alias
// matching, bare-name fallback) and own the error messages for unknown
// references.
type Layout interface {
	// Slot returns the row index holding table.column (table may be
	// empty), or an error if the reference does not resolve.
	Slot(table, column string) (int, error)
}

// LayoutFunc adapts a function to the Layout interface.
type LayoutFunc func(table, column string) (int, error)

// Slot implements Layout.
func (f LayoutFunc) Slot(table, column string) (int, error) { return f(table, column) }

// MapLayout is a Layout backed by a map from "table.column" (or "column"
// for unqualified names) to slots, with MapEnv's resolution semantics: a
// qualified reference falls back to the bare column name.
type MapLayout map[string]int

// Slot implements Layout.
func (m MapLayout) Slot(table, column string) (int, error) {
	key := column
	if table != "" {
		key = table + "." + column
	}
	if s, ok := m[key]; ok {
		return s, nil
	}
	if table != "" {
		if s, ok := m[column]; ok {
			return s, nil
		}
	}
	return 0, fmt.Errorf("eval: unknown column %q", key)
}

// node is one compiled expression node: a closure evaluated against a row.
type node func(row []value.Value) (value.Value, error)

// Program is a compiled expression. It is immutable after Compile and safe
// for concurrent use from multiple goroutines (the parallel chain executor
// shares one Program per step across its workers).
type Program struct {
	root  node
	refs  []int
	width int
}

// Compile compiles the expression against the layout. A nil expression
// compiles to a nil Program, whose EvalBool is true (the usual semantics
// of an absent WHERE clause).
func Compile(e sqlparse.Expr, layout Layout) (*Program, error) {
	if e == nil {
		return nil, nil
	}
	c := &compiler{layout: layout, refs: map[int]bool{}}
	root, _, err := c.compile(e)
	if err != nil {
		return nil, err
	}
	p := &Program{root: root}
	for s := range c.refs {
		p.refs = append(p.refs, s)
		if s+1 > p.width {
			p.width = s + 1
		}
	}
	sort.Ints(p.refs)
	return p, nil
}

// Refs returns the sorted row slots the program reads. Callers that
// assemble rows from wider storage can fill only these slots.
func (p *Program) Refs() []int { return p.refs }

// Eval evaluates the program over the row. The row must cover every slot
// in Refs; unreferenced slots may hold anything (including the zero Value).
func (p *Program) Eval(row []value.Value) (value.Value, error) {
	if p == nil {
		return value.Null, fmt.Errorf("eval: nil program")
	}
	if len(row) < p.width {
		return value.Null, fmt.Errorf("eval: row has %d slots, program reads slot %d", len(row), p.width-1)
	}
	return p.root(row)
}

// EvalBool evaluates the program as a predicate; NULL (SQL UNKNOWN) counts
// as false, and a nil Program is true, both as in a WHERE clause.
func (p *Program) EvalBool(row []value.Value) (bool, error) {
	if p == nil {
		return true, nil
	}
	v, err := p.Eval(row)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

type compiler struct {
	layout Layout
	refs   map[int]bool
}

// constNode returns a node yielding a fixed value, and constErrNode one
// yielding a fixed error (a constant subtree whose evaluation fails must
// keep failing at Eval time, not at Compile time — see the file comment).
func constNode(v value.Value) node {
	return func([]value.Value) (value.Value, error) { return v, nil }
}

func constErrNode(err error) node {
	return func([]value.Value) (value.Value, error) { return value.Null, err }
}

// fold evaluates a row-independent node once and caches the outcome.
func fold(n node) node {
	v, err := n(nil)
	if err != nil {
		return constErrNode(err)
	}
	return constNode(v)
}

// compile returns the node for e and whether it is row-independent
// (constant), in which case the node is already folded.
func (c *compiler) compile(e sqlparse.Expr) (node, bool, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		// Mirror Eval's literal typing: integral spellings become INTs.
		if n.Value == math.Trunc(n.Value) && !strings.ContainsAny(n.Text, ".eE") && math.Abs(n.Value) < 1e15 {
			return constNode(value.Int(int64(n.Value))), true, nil
		}
		return constNode(value.Float(n.Value)), true, nil

	case *sqlparse.StringLit:
		return constNode(value.String(n.Value)), true, nil

	case *sqlparse.BoolLit:
		return constNode(value.Bool(n.Value)), true, nil

	case *sqlparse.NullLit:
		return constNode(value.Null), true, nil

	case *sqlparse.ColumnRef:
		slot, err := c.layout.Slot(n.Table, n.Column)
		if err != nil {
			return nil, false, err
		}
		c.refs[slot] = true
		return func(row []value.Value) (value.Value, error) {
			return row[slot], nil
		}, false, nil

	case *sqlparse.UnaryExpr:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, false, err
		}
		var out node
		if n.Op == "NOT" {
			out = func(row []value.Value) (value.Value, error) {
				v, err := x(row)
				if err != nil {
					return value.Null, err
				}
				return value.Not(v), nil
			}
		} else {
			out = func(row []value.Value) (value.Value, error) {
				v, err := x(row)
				if err != nil {
					return value.Null, err
				}
				return value.Neg(v)
			}
		}
		if xc {
			return fold(out), true, nil
		}
		return out, false, nil

	case *sqlparse.BinaryExpr:
		return c.compileBinary(n)

	case *sqlparse.IsNull:
		x, xc, err := c.compile(n.X)
		if err != nil {
			return nil, false, err
		}
		negated := n.Negated
		out := node(func(row []value.Value) (value.Value, error) {
			v, err := x(row)
			if err != nil {
				return value.Null, err
			}
			return value.Bool(v.IsNull() != negated), nil
		})
		if xc {
			return fold(out), true, nil
		}
		return out, false, nil

	case *sqlparse.InList:
		return c.compileIn(n)

	case *sqlparse.Between:
		return c.compileBetween(n)

	case *sqlparse.FuncCall:
		return c.compileFunc(n)

	case *sqlparse.Star:
		return nil, false, fmt.Errorf("eval: * is not valid in an expression")
	}
	return nil, false, fmt.Errorf("eval: unsupported expression %T", e)
}

func (c *compiler) compileBinary(n *sqlparse.BinaryExpr) (node, bool, error) {
	l, lc, err := c.compile(n.L)
	if err != nil {
		return nil, false, err
	}

	// A constant AND/OR left side can decide the whole expression before
	// the right side is ever evaluated (the interpreter short-circuits the
	// same way, so the fold is exact even if the right side would error).
	// The dead side is still compiled — binding errors there should not
	// hide behind a constant guard — but into a scratch ref set, so the
	// program does not report (or fill) slots it never reads.
	if lc && (n.Op == "AND" || n.Op == "OR") {
		lv, lerr := l(nil)
		var decided node
		switch {
		case lerr != nil:
			decided = constErrNode(lerr)
		case n.Op == "AND" && lv.Type() == value.BoolType && !lv.AsBool():
			decided = constNode(value.Bool(false))
		case n.Op == "OR" && lv.IsTrue():
			decided = constNode(value.Bool(true))
		}
		if decided != nil {
			sub := &compiler{layout: c.layout, refs: map[int]bool{}}
			if _, _, err := sub.compile(n.R); err != nil {
				return nil, false, err
			}
			return decided, true, nil
		}
	}

	r, rc, err := c.compile(n.R)
	if err != nil {
		return nil, false, err
	}

	switch n.Op {
	case "AND":
		out := node(func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			if lv.Type() == value.BoolType && !lv.AsBool() {
				return value.Bool(false), nil
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			return value.And(lv, rv), nil
		})
		if lc && rc {
			return fold(out), true, nil
		}
		return out, false, nil

	case "OR":
		out := node(func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			if lv.IsTrue() {
				return value.Bool(true), nil
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			return value.Or(lv, rv), nil
		})
		if lc && rc {
			return fold(out), true, nil
		}
		return out, false, nil

	case "+", "-", "*", "/", "%":
		op := n.Op
		out := node(func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			return value.Arith(op, lv, rv)
		})
		if lc && rc {
			return fold(out), true, nil
		}
		return out, false, nil

	case "=", "<>", "<", "<=", ">", ">=":
		cmpFn := cmpPredicate(n.Op)
		out := node(func(row []value.Value) (value.Value, error) {
			lv, err := l(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := r(row)
			if err != nil {
				return value.Null, err
			}
			cmp, ok, err := value.Compare(lv, rv)
			if err != nil {
				return value.Null, err
			}
			if !ok {
				return value.Null, nil // NULL comparison → UNKNOWN
			}
			return value.Bool(cmpFn(cmp)), nil
		})
		if lc && rc {
			return fold(out), true, nil
		}
		return out, false, nil

	case "LIKE":
		out := c.compileLikeNode(l, r, rc)
		if lc && rc {
			return fold(out), true, nil
		}
		return out, false, nil
	}
	return nil, false, fmt.Errorf("eval: unknown operator %q", n.Op)
}

func cmpPredicate(op string) func(int) bool {
	switch op {
	case "=":
		return func(c int) bool { return c == 0 }
	case "<>":
		return func(c int) bool { return c != 0 }
	case "<":
		return func(c int) bool { return c < 0 }
	case "<=":
		return func(c int) bool { return c <= 0 }
	case ">":
		return func(c int) bool { return c > 0 }
	default: // ">="
		return func(c int) bool { return c >= 0 }
	}
}

// compileLikeNode builds a LIKE node. A constant pattern is translated to
// its regexp once here, skipping the shared pattern cache entirely on the
// hot path; otherwise evaluation falls back to the interpreter's cached
// path.
func (c *compiler) compileLikeNode(l, r node, rconst bool) node {
	if rconst {
		rv, rerr := r(nil)
		switch {
		case rerr != nil:
			// The interpreter evaluates the left side first, so its error
			// (if any) would win; but both sides failing is still a
			// failure, which is all EvalBool and the scan loops observe.
			return constErrNode(rerr)
		case rv.IsNull():
			return func(row []value.Value) (value.Value, error) {
				if _, err := l(row); err != nil {
					return value.Null, err
				}
				return value.Null, nil
			}
		case rv.Type() == value.StringType:
			match := likeMatcher(rv.AsString())
			if match == nil {
				rx, err := compileLike(rv.AsString())
				if err != nil {
					break // defer the pattern error to evaluation, like the interpreter
				}
				match = rx.MatchString
			}
			rt := rv.Type()
			return func(row []value.Value) (value.Value, error) {
				lv, err := l(row)
				if err != nil {
					return value.Null, err
				}
				if lv.IsNull() {
					return value.Null, nil
				}
				if lv.Type() != value.StringType {
					return value.Null, fmt.Errorf("eval: LIKE requires strings, got %v and %v", lv.Type(), rt)
				}
				return value.Bool(match(lv.AsString())), nil
			}
		}
	}
	return func(row []value.Value) (value.Value, error) {
		lv, err := l(row)
		if err != nil {
			return value.Null, err
		}
		rv, err := r(row)
		if err != nil {
			return value.Null, err
		}
		return evalLike(lv, rv)
	}
}

// likeMatcher translates the common simple LIKE shapes — exact ("abc"),
// prefix ("abc%"), suffix ("%abc"), substring ("%abc%") and match-all
// ("%", "%%") — into direct string predicates, skipping the regexp engine
// entirely. Patterns with "_" or interior "%" return nil and fall back to
// the compiled regexp, whose semantics these shortcuts mirror exactly
// (the differential fuzzer cross-checks them against the interpreter's
// regexp path).
func likeMatcher(pat string) func(string) bool {
	if strings.ContainsRune(pat, '_') {
		return nil
	}
	switch strings.Count(pat, "%") {
	case 0:
		return func(s string) bool { return s == pat }
	case 1:
		switch {
		case strings.HasSuffix(pat, "%"):
			p := pat[:len(pat)-1]
			return func(s string) bool { return strings.HasPrefix(s, p) }
		case strings.HasPrefix(pat, "%"):
			suf := pat[1:]
			return func(s string) bool { return strings.HasSuffix(s, suf) }
		}
	case 2:
		if strings.HasPrefix(pat, "%") && strings.HasSuffix(pat, "%") && len(pat) >= 2 {
			mid := pat[1 : len(pat)-1]
			return func(s string) bool { return strings.Contains(s, mid) }
		}
	}
	return nil
}

func (c *compiler) compileIn(n *sqlparse.InList) (node, bool, error) {
	x, xc, err := c.compile(n.X)
	if err != nil {
		return nil, false, err
	}
	items := make([]node, len(n.List))
	allConst := xc
	for i, item := range n.List {
		in, ic, err := c.compile(item)
		if err != nil {
			return nil, false, err
		}
		items[i] = in
		allConst = allConst && ic
	}
	negated := n.Negated
	out := node(func(row []value.Value) (value.Value, error) {
		xv, err := x(row)
		if err != nil {
			return value.Null, err
		}
		if xv.IsNull() {
			return value.Null, nil
		}
		sawNull := false
		for _, item := range items {
			v, err := item(row)
			if err != nil {
				return value.Null, err
			}
			cmp, ok, err := value.Compare(xv, v)
			if err != nil {
				return value.Null, err
			}
			if !ok {
				sawNull = true
				continue
			}
			if cmp == 0 {
				return value.Bool(!negated), nil
			}
		}
		if sawNull {
			return value.Null, nil
		}
		return value.Bool(negated), nil
	})
	if allConst {
		return fold(out), true, nil
	}
	return out, false, nil
}

func (c *compiler) compileBetween(n *sqlparse.Between) (node, bool, error) {
	x, xc, err := c.compile(n.X)
	if err != nil {
		return nil, false, err
	}
	lo, loc, err := c.compile(n.Lo)
	if err != nil {
		return nil, false, err
	}
	hi, hic, err := c.compile(n.Hi)
	if err != nil {
		return nil, false, err
	}
	negated := n.Negated
	out := node(func(row []value.Value) (value.Value, error) {
		xv, err := x(row)
		if err != nil {
			return value.Null, err
		}
		lov, err := lo(row)
		if err != nil {
			return value.Null, err
		}
		hiv, err := hi(row)
		if err != nil {
			return value.Null, err
		}
		cmpLo, okLo, err := value.Compare(xv, lov)
		if err != nil {
			return value.Null, err
		}
		cmpHi, okHi, err := value.Compare(xv, hiv)
		if err != nil {
			return value.Null, err
		}
		if !okLo || !okHi {
			return value.Null, nil
		}
		in := cmpLo >= 0 && cmpHi <= 0
		return value.Bool(in != negated), nil
	})
	if xc && loc && hic {
		return fold(out), true, nil
	}
	return out, false, nil
}

// compileFunc resolves the function name and arity at compile time and
// dispatches to the same kernels the interpreter uses. Fixed-arity
// functions evaluate their arguments straight into the kernel with no
// argument slice.
func (c *compiler) compileFunc(n *sqlparse.FuncCall) (node, bool, error) {
	name := strings.ToUpper(n.Name)
	args := make([]node, len(n.Args))
	allConst := true
	for i, a := range n.Args {
		an, ac, err := c.compile(a)
		if err != nil {
			return nil, false, err
		}
		args[i] = an
		allConst = allConst && ac
	}

	var out node
	switch {
	case scalar1[name] != nil:
		if len(args) != 1 {
			return nil, false, arityErr(name, 1, len(args))
		}
		f, a := scalar1[name], args[0]
		out = func(row []value.Value) (value.Value, error) {
			v, err := a(row)
			if err != nil {
				return value.Null, err
			}
			return f(v)
		}
	case scalar2[name] != nil:
		if len(args) != 2 {
			return nil, false, arityErr(name, 2, len(args))
		}
		f, a, b := scalar2[name], args[0], args[1]
		out = func(row []value.Value) (value.Value, error) {
			av, err := a(row)
			if err != nil {
				return value.Null, err
			}
			bv, err := b(row)
			if err != nil {
				return value.Null, err
			}
			return f(av, bv)
		}
	case name == "COALESCE":
		// Mirror the interpreter: every argument is evaluated (so a later
		// argument's error surfaces even after a non-NULL hit), then the
		// first non-NULL value wins.
		out = func(row []value.Value) (value.Value, error) {
			res, found := value.Null, false
			for _, a := range args {
				v, err := a(row)
				if err != nil {
					return value.Null, err
				}
				if !found && !v.IsNull() {
					res, found = v, true
				}
			}
			return res, nil
		}
	default:
		return nil, false, fmt.Errorf("eval: unknown function %q", n.Name)
	}
	if allConst {
		return fold(out), true, nil
	}
	return out, false, nil
}
