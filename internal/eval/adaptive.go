package eval

// Adaptive batch sizing for the streaming scan sites. The global
// BatchSize() knob fixes how many candidate rows a site accumulates
// before it gathers columns and runs a batch program. That is the right
// ceiling for sites that drain every batch — amortization improves with
// size — but sites that regularly *stop inside* a batch pay for the tail
// they never needed: a drop-out step gathers and evaluates the whole
// batch even when its first candidate already vetoes the tuple.
//
// A BatchSizer is a per-step controller that adapts the flush threshold
// between a floor and the configured BatchSize() from what the step
// observes: batches that run full but are mostly wasted (the step stopped
// early, or almost nothing survived the predicate) halve the threshold;
// full batches that are mostly useful double it back. Partial batches —
// the candidate stream ran dry before the threshold — carry no signal,
// since the threshold was not the binding constraint.
//
// Changing the threshold never changes results: scan sites are
// batch-size invariant (the golden corpus pins this at sizes {1, 3,
// 1024}), so the sizer is free to move mid-step, and concurrent workers
// may share one sizer (reads and updates are atomic; a lost update is
// just a skipped adaptation step).

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// MinAdaptiveBatch is the default floor of a BatchSizer (clamped down
// further only when BatchSize() itself is smaller). Below ~32 rows the
// per-batch fixed costs usually dominate any saved tail — but a step
// with a recorded utilization history can learn a lower floor from it
// (LearnFloor): when full batches routinely do single-digit useful rows,
// the saved gather tail outweighs the fixed costs well below 32.
const MinAdaptiveBatch = 32

// MinLearnedFloor is the hard lower bound on a trace-learned floor.
const MinLearnedFloor = 4

// minFloorTrace is how many recorded full batches LearnFloor needs
// before it trusts a trace enough to lower the floor.
const minFloorTrace = 16

// BatchObs is one recorded batch: Filled rows entered it, Used did
// useful work (the arguments of BatchSizer.Observe).
type BatchObs struct{ Filled, Used int }

// batchTraceCap bounds a BatchTrace ring: enough history to
// characterize a step's utilization, small enough to keep per table.
const batchTraceCap = 256

// BatchTrace is a bounded ring of recorded batch observations for one
// scan site (in the nodes: one per table). Sizers built from a trace
// record into it, so the floor learned for the next query reflects the
// utilization the last queries actually saw.
type BatchTrace struct {
	mu   sync.Mutex
	obs  []BatchObs
	next int
}

// Record folds one observed batch into the ring.
func (t *BatchTrace) Record(filled, used int) {
	if filled <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.obs) < batchTraceCap {
		t.obs = append(t.obs, BatchObs{Filled: filled, Used: used})
		return
	}
	t.obs[t.next] = BatchObs{Filled: filled, Used: used}
	t.next = (t.next + 1) % batchTraceCap
}

// Snapshot returns a copy of the recorded observations.
func (t *BatchTrace) Snapshot() []BatchObs {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]BatchObs(nil), t.obs...)
}

// LearnFloor derives a sizer floor from a recorded trace: the median
// useful-row count of the recorded batches, doubled for headroom and
// rounded up to a power of two, clamped to [MinLearnedFloor,
// MinAdaptiveBatch]. A drop-out-heavy trace (vetoes land in the first
// handful of rows, the rest of every full batch is wasted gather work)
// learns a floor near MinLearnedFloor; balanced traces keep the default.
// Traces shorter than minFloorTrace carry too little evidence and keep
// the default floor too.
func LearnFloor(trace []BatchObs) int {
	used := make([]int, 0, len(trace))
	for _, o := range trace {
		if o.Filled > 0 {
			used = append(used, o.Used)
		}
	}
	if len(used) < minFloorTrace {
		return MinAdaptiveBatch
	}
	sort.Ints(used)
	median := used[len(used)/2]
	floor := 2 * median
	if floor < 2 {
		floor = 2
	}
	floor = 1 << bits.Len(uint(floor-1)) // round up to a power of two
	if floor < MinLearnedFloor {
		floor = MinLearnedFloor
	}
	if floor > MinAdaptiveBatch {
		floor = MinAdaptiveBatch
	}
	return floor
}

// BatchSizer adapts a scan site's flush threshold to observed batch
// utilization. The zero value is not usable; construct with NewBatchSizer
// or NewBatchSizerFromTrace.
type BatchSizer struct {
	size     atomic.Int64
	min, max int64
	trace    *BatchTrace
}

// NewBatchSizer returns a sizer starting at the configured BatchSize(),
// which is also its ceiling; the floor is MinAdaptiveBatch (or the
// ceiling, when that is smaller).
func NewBatchSizer() *BatchSizer {
	s := &BatchSizer{max: int64(BatchSize()), min: MinAdaptiveBatch}
	if s.min > s.max {
		s.min = s.max
	}
	s.size.Store(s.max)
	return s
}

// NewBatchSizerFromTrace is NewBatchSizer with a floor learned from the
// trace's recorded history (it can only lower the default floor, never
// raise it), and the sizer records its own full-batch observations back
// into the trace for the next query. A nil trace is NewBatchSizer.
func NewBatchSizerFromTrace(tr *BatchTrace) *BatchSizer {
	s := NewBatchSizer()
	if tr == nil {
		return s
	}
	if f := int64(LearnFloor(tr.Snapshot())); f < s.min {
		s.min = f
	}
	s.trace = tr
	return s
}

// Size returns the current flush threshold.
func (s *BatchSizer) Size() int { return int(s.size.Load()) }

// Observe records one flushed batch: filled rows entered it and used rows
// did useful work — rows consumed before an early stop (a drop-out veto),
// or rows surviving the filter when the site never stops early. Batches
// smaller than the current threshold carry no signal and are ignored.
func (s *BatchSizer) Observe(filled, used int) {
	cur := s.size.Load()
	if filled <= 0 || int64(filled) < cur {
		return
	}
	if s.trace != nil {
		s.trace.Record(filled, used)
	}
	switch {
	case int64(used)*8 <= int64(filled):
		// At most 1/8 of a full batch was useful: halve toward the floor.
		next := cur / 2
		if next < s.min {
			next = s.min
		}
		if next != cur {
			s.size.CompareAndSwap(cur, next)
		}
	case int64(used)*2 >= int64(filled):
		// A full batch at least half useful: amortization wins, grow back.
		next := cur * 2
		if next > s.max {
			next = s.max
		}
		if next != cur {
			s.size.CompareAndSwap(cur, next)
		}
	}
}
