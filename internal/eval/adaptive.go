package eval

// Adaptive batch sizing for the streaming scan sites. The global
// BatchSize() knob fixes how many candidate rows a site accumulates
// before it gathers columns and runs a batch program. That is the right
// ceiling for sites that drain every batch — amortization improves with
// size — but sites that regularly *stop inside* a batch pay for the tail
// they never needed: a drop-out step gathers and evaluates the whole
// batch even when its first candidate already vetoes the tuple.
//
// A BatchSizer is a per-step controller that adapts the flush threshold
// between a floor and the configured BatchSize() from what the step
// observes: batches that run full but are mostly wasted (the step stopped
// early, or almost nothing survived the predicate) halve the threshold;
// full batches that are mostly useful double it back. Partial batches —
// the candidate stream ran dry before the threshold — carry no signal,
// since the threshold was not the binding constraint.
//
// Changing the threshold never changes results: scan sites are
// batch-size invariant (the golden corpus pins this at sizes {1, 3,
// 1024}), so the sizer is free to move mid-step, and concurrent workers
// may share one sizer (reads and updates are atomic; a lost update is
// just a skipped adaptation step).

import "sync/atomic"

// MinAdaptiveBatch is the smallest flush threshold a BatchSizer will
// select (clamped down further only when BatchSize() itself is smaller).
// Below ~32 rows the per-batch fixed costs dominate any saved tail.
const MinAdaptiveBatch = 32

// BatchSizer adapts a scan site's flush threshold to observed batch
// utilization. The zero value is not usable; construct with NewBatchSizer.
type BatchSizer struct {
	size     atomic.Int64
	min, max int64
}

// NewBatchSizer returns a sizer starting at the configured BatchSize(),
// which is also its ceiling; the floor is MinAdaptiveBatch (or the
// ceiling, when that is smaller).
func NewBatchSizer() *BatchSizer {
	s := &BatchSizer{max: int64(BatchSize()), min: MinAdaptiveBatch}
	if s.min > s.max {
		s.min = s.max
	}
	s.size.Store(s.max)
	return s
}

// Size returns the current flush threshold.
func (s *BatchSizer) Size() int { return int(s.size.Load()) }

// Observe records one flushed batch: filled rows entered it and used rows
// did useful work — rows consumed before an early stop (a drop-out veto),
// or rows surviving the filter when the site never stops early. Batches
// smaller than the current threshold carry no signal and are ignored.
func (s *BatchSizer) Observe(filled, used int) {
	cur := s.size.Load()
	if filled <= 0 || int64(filled) < cur {
		return
	}
	switch {
	case int64(used)*8 <= int64(filled):
		// At most 1/8 of a full batch was useful: halve toward the floor.
		next := cur / 2
		if next < s.min {
			next = s.min
		}
		if next != cur {
			s.size.CompareAndSwap(cur, next)
		}
	case int64(used)*2 >= int64(filled):
		// A full batch at least half useful: amortization wins, grow back.
		next := cur * 2
		if next > s.max {
			next = s.max
		}
		if next != cur {
			s.size.CompareAndSwap(cur, next)
		}
	}
}
