// Package eval evaluates parsed SQL expressions (internal/sqlparse) over an
// environment that resolves column references to values. It is shared by
// the storage engine (row predicates, projections) and the cross-match
// chain executor (cross-archive predicates over partial tuples).
//
// Four engines, layered slowest-reference to fastest-production, share
// one semantics:
//
//   - Eval interprets the AST per row through Env lookups. It is the
//     reference implementation and the slowest path.
//   - Compile resolves column references to row slots against a Layout at
//     plan time and returns a closure-tree Program evaluated per row. See
//     compile.go.
//   - CompileBatch returns a BatchProgram evaluated over boxed column
//     slices ([]value.Value per slot) with a selection vector, in batches
//     of BatchSize rows (default 1024). See batch.go for the execution
//     model and the exact error-semantics contract (errRow: evaluation
//     stops at the first selected row whose scalar evaluation would
//     error).
//   - CompileTyped returns a TypedProgram evaluated over typed column
//     vectors (Vector: native []int64 / []float64 / []string / []bool
//     payloads with a null mask, vector.go) with the same execution model
//     and error contract. Kernels dispatch per batch on operand kinds and
//     loop over raw slices; boxed fallbacks cover mixed-kind columns and
//     the long tail. All hot scan sites — storage scans (zero-copy column
//     views of the table backends, zone-map pruned), chain-step
//     local/cross predicates (typed candidate gathers), portal
//     projection, the pull baseline — run this engine. See typed.go.
//
// The earlier engines stay as cross-validation references for the later
// ones, not as dead code: the long tail of batch evaluation (IN, BETWEEN,
// COALESCE) reuses the compiled scalar nodes per row, every scalar
// function dispatches to the same kernels from all four engines, and the
// differential tests plus the FuzzCompileDifferential /
// FuzzBatchDifferential (four-way) fuzz targets enforce value- and
// error-agreement row by row.
//
// AnalyzePrune (prune.go) is the plan-time companion of the typed scan:
// it extracts the WHERE conjuncts whose per-block min/max statistics can
// prove scan blocks dead, with the exactness conditions documented there.
package eval

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"

	"skyquery/internal/sqlparse"
	"skyquery/internal/value"
)

// Env resolves column references during evaluation.
type Env interface {
	// Lookup returns the value of table.column. table may be empty for
	// unqualified references in single-table contexts.
	Lookup(table, column string) (value.Value, error)
}

// EnvFunc adapts a function to the Env interface.
type EnvFunc func(table, column string) (value.Value, error)

// Lookup implements Env.
func (f EnvFunc) Lookup(table, column string) (value.Value, error) { return f(table, column) }

// MapEnv is an Env backed by a map from "table.column" (or "column" for
// unqualified names) to values.
type MapEnv map[string]value.Value

// Lookup implements Env.
func (m MapEnv) Lookup(table, column string) (value.Value, error) {
	key := column
	if table != "" {
		key = table + "." + column
	}
	if v, ok := m[key]; ok {
		return v, nil
	}
	// Fall back to the bare column for single-table contexts.
	if table != "" {
		if v, ok := m[column]; ok {
			return v, nil
		}
	}
	return value.Null, fmt.Errorf("eval: unknown column %q", key)
}

// Eval evaluates the expression in the environment. Errors indicate type
// mismatches or unknown columns/functions; SQL NULL is a value, not an
// error.
func Eval(e sqlparse.Expr, env Env) (value.Value, error) {
	switch n := e.(type) {
	case *sqlparse.NumberLit:
		// Integral literals become INTs so that int columns compare and
		// group naturally; anything with a fraction or exponent is FLOAT.
		if n.Value == math.Trunc(n.Value) && !strings.ContainsAny(n.Text, ".eE") && math.Abs(n.Value) < 1e15 {
			return value.Int(int64(n.Value)), nil
		}
		return value.Float(n.Value), nil

	case *sqlparse.StringLit:
		return value.String(n.Value), nil

	case *sqlparse.BoolLit:
		return value.Bool(n.Value), nil

	case *sqlparse.NullLit:
		return value.Null, nil

	case *sqlparse.ColumnRef:
		return env.Lookup(n.Table, n.Column)

	case *sqlparse.UnaryExpr:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Null, err
		}
		if n.Op == "NOT" {
			return value.Not(x), nil
		}
		return value.Neg(x)

	case *sqlparse.BinaryExpr:
		return evalBinary(n, env)

	case *sqlparse.IsNull:
		x, err := Eval(n.X, env)
		if err != nil {
			return value.Null, err
		}
		return value.Bool(x.IsNull() != n.Negated), nil

	case *sqlparse.InList:
		return evalIn(n, env)

	case *sqlparse.Between:
		return evalBetween(n, env)

	case *sqlparse.FuncCall:
		return evalFunc(n, env)

	case *sqlparse.Star:
		return value.Null, fmt.Errorf("eval: * is not valid in an expression")
	}
	return value.Null, fmt.Errorf("eval: unsupported expression %T", e)
}

// EvalBool evaluates a predicate; NULL (SQL UNKNOWN) counts as false, as in
// a WHERE clause.
func EvalBool(e sqlparse.Expr, env Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := Eval(e, env)
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

func evalBinary(n *sqlparse.BinaryExpr, env Env) (value.Value, error) {
	// AND short-circuits around errors on the other side only when the
	// decided side already forces the result, matching SQL engines that
	// evaluate lazily.
	switch n.Op {
	case "AND":
		l, err := Eval(n.L, env)
		if err != nil {
			return value.Null, err
		}
		if l.Type() == value.BoolType && !l.AsBool() {
			return value.Bool(false), nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return value.Null, err
		}
		return value.And(l, r), nil
	case "OR":
		l, err := Eval(n.L, env)
		if err != nil {
			return value.Null, err
		}
		if l.IsTrue() {
			return value.Bool(true), nil
		}
		r, err := Eval(n.R, env)
		if err != nil {
			return value.Null, err
		}
		return value.Or(l, r), nil
	}

	l, err := Eval(n.L, env)
	if err != nil {
		return value.Null, err
	}
	r, err := Eval(n.R, env)
	if err != nil {
		return value.Null, err
	}
	switch n.Op {
	case "+", "-", "*", "/", "%":
		return value.Arith(n.Op, l, r)
	case "=", "<>", "<", "<=", ">", ">=":
		cmp, ok, err := value.Compare(l, r)
		if err != nil {
			return value.Null, err
		}
		if !ok {
			return value.Null, nil // NULL comparison → UNKNOWN
		}
		var b bool
		switch n.Op {
		case "=":
			b = cmp == 0
		case "<>":
			b = cmp != 0
		case "<":
			b = cmp < 0
		case "<=":
			b = cmp <= 0
		case ">":
			b = cmp > 0
		case ">=":
			b = cmp >= 0
		}
		return value.Bool(b), nil
	case "LIKE":
		return evalLike(l, r)
	}
	return value.Null, fmt.Errorf("eval: unknown operator %q", n.Op)
}

func evalIn(n *sqlparse.InList, env Env) (value.Value, error) {
	x, err := Eval(n.X, env)
	if err != nil {
		return value.Null, err
	}
	if x.IsNull() {
		return value.Null, nil
	}
	sawNull := false
	for _, item := range n.List {
		v, err := Eval(item, env)
		if err != nil {
			return value.Null, err
		}
		cmp, ok, err := value.Compare(x, v)
		if err != nil {
			return value.Null, err
		}
		if !ok {
			sawNull = true
			continue
		}
		if cmp == 0 {
			return value.Bool(!n.Negated), nil
		}
	}
	if sawNull {
		return value.Null, nil
	}
	return value.Bool(n.Negated), nil
}

func evalBetween(n *sqlparse.Between, env Env) (value.Value, error) {
	x, err := Eval(n.X, env)
	if err != nil {
		return value.Null, err
	}
	lo, err := Eval(n.Lo, env)
	if err != nil {
		return value.Null, err
	}
	hi, err := Eval(n.Hi, env)
	if err != nil {
		return value.Null, err
	}
	cmpLo, okLo, err := value.Compare(x, lo)
	if err != nil {
		return value.Null, err
	}
	cmpHi, okHi, err := value.Compare(x, hi)
	if err != nil {
		return value.Null, err
	}
	if !okLo || !okHi {
		return value.Null, nil
	}
	in := cmpLo >= 0 && cmpHi <= 0
	return value.Bool(in != n.Negated), nil
}

// likePatternCache is a bounded cache of compiled LIKE patterns. Federated
// predicates re-evaluate the same pattern per row, so caching pays; but the
// portal accepts arbitrary query streams, and an unbounded cache keyed by
// pattern text would grow forever under unique patterns. Two generations of
// at most likeCacheGen entries each bound the footprint: when the current
// generation fills up it becomes the previous one, and entries still in use
// are promoted back on their next hit (a miss only ever recompiles, never
// breaks correctness).
type likePatternCache struct {
	mu   sync.RWMutex
	cur  map[string]*regexp.Regexp
	prev map[string]*regexp.Regexp
}

// likeCacheGen is the per-generation capacity (two generations are live at
// once, so at most 2*likeCacheGen patterns are retained).
const likeCacheGen = 256

var likeCache likePatternCache

func (c *likePatternCache) get(pat string) (*regexp.Regexp, error) {
	// The common case — a current-generation hit — takes only the read
	// lock, so parallel chain workers evaluating the same dynamic pattern
	// do not serialize.
	c.mu.RLock()
	rx, hit := c.cur[pat]
	c.mu.RUnlock()
	if hit {
		return rx, nil
	}
	c.mu.Lock()
	if rx, ok := c.cur[pat]; ok {
		c.mu.Unlock()
		return rx, nil
	}
	if rx, ok := c.prev[pat]; ok {
		c.insertLocked(pat, rx)
		c.mu.Unlock()
		return rx, nil
	}
	c.mu.Unlock()
	// Compile outside the lock; a concurrent duplicate compile is harmless.
	rx, err := compileLike(pat)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.insertLocked(pat, rx)
	c.mu.Unlock()
	return rx, nil
}

func (c *likePatternCache) insertLocked(pat string, rx *regexp.Regexp) {
	if c.cur == nil {
		c.cur = make(map[string]*regexp.Regexp, likeCacheGen)
	}
	if len(c.cur) >= likeCacheGen {
		c.prev = c.cur
		c.cur = make(map[string]*regexp.Regexp, likeCacheGen)
	}
	c.cur[pat] = rx
}

// size reports the number of retained patterns (for tests).
func (c *likePatternCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.cur) + len(c.prev)
}

func evalLike(l, r value.Value) (value.Value, error) {
	if l.IsNull() || r.IsNull() {
		return value.Null, nil
	}
	if l.Type() != value.StringType || r.Type() != value.StringType {
		return value.Null, fmt.Errorf("eval: LIKE requires strings, got %v and %v", l.Type(), r.Type())
	}
	rx, err := likeCache.get(r.AsString())
	if err != nil {
		return value.Null, err
	}
	return value.Bool(rx.MatchString(l.AsString())), nil
}

// compileLike translates a SQL LIKE pattern (% and _) into an anchored
// regular expression.
func compileLike(pat string) (*regexp.Regexp, error) {
	var sb strings.Builder
	sb.WriteString("(?s)^")
	for _, r := range pat {
		switch r {
		case '%':
			sb.WriteString(".*")
		case '_':
			sb.WriteString(".")
		default:
			sb.WriteString(regexp.QuoteMeta(string(r)))
		}
	}
	sb.WriteString("$")
	return regexp.Compile(sb.String())
}

// The scalar function set mirrors what astronomy predicates in the paper's
// examples need, plus common numeric helpers. Semantics live in per-function
// kernels over already-evaluated arguments so that the tree-walking
// interpreter (evalFunc) and the compiler (compileFunc) dispatch to the
// exact same code and cannot drift.

// kernel1 and kernel2 are unary and binary scalar function kernels.
type kernel1 func(a value.Value) (value.Value, error)
type kernel2 func(a, b value.Value) (value.Value, error)

// oneNumKernel wraps a float function with NULL propagation and the numeric
// type check, naming the function in errors.
func oneNumKernel(name string, f func(float64) float64) kernel1 {
	return func(a value.Value) (value.Value, error) {
		if a.IsNull() {
			return value.Null, nil
		}
		x, ok := a.AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("eval: %s expects a number, got %v", name, a.Type())
		}
		return value.Float(f(x)), nil
	}
}

// oneStrKernel wraps a string function with NULL propagation. Like the
// historical evaluator it does not type-check: non-string values read as
// the empty string.
func oneStrKernel(f func(string) value.Value) kernel1 {
	return func(a value.Value) (value.Value, error) {
		if a.IsNull() {
			return value.Null, nil
		}
		return f(a.AsString()), nil
	}
}

func absKernel(a value.Value) (value.Value, error) {
	if a.IsNull() {
		return value.Null, nil
	}
	if a.Type() == value.IntType {
		i := a.AsInt()
		if i == math.MinInt64 {
			// -math.MinInt64 overflows back to itself; the magnitude is
			// only representable as a float.
			return value.Float(-float64(math.MinInt64)), nil
		}
		if i < 0 {
			i = -i
		}
		return value.Int(i), nil
	}
	return oneNumKernel("ABS", math.Abs)(a)
}

func powerKernel(a, b value.Value) (value.Value, error) {
	if a.IsNull() || b.IsNull() {
		return value.Null, nil
	}
	x, okX := a.AsFloat()
	y, okY := b.AsFloat()
	if !okX || !okY {
		return value.Null, fmt.Errorf("eval: POWER expects numbers")
	}
	return value.Float(math.Pow(x, y)), nil
}

// scalar1 and scalar2 map upper-cased function names to their kernels.
var scalar1 = map[string]kernel1{
	"ABS":     absKernel,
	"SQRT":    oneNumKernel("SQRT", math.Sqrt),
	"FLOOR":   oneNumKernel("FLOOR", math.Floor),
	"CEIL":    oneNumKernel("CEIL", math.Ceil),
	"CEILING": oneNumKernel("CEILING", math.Ceil),
	"LOG":     oneNumKernel("LOG", math.Log),
	"LOG10":   oneNumKernel("LOG10", math.Log10),
	"EXP":     oneNumKernel("EXP", math.Exp),
	"SIN":     oneNumKernel("SIN", math.Sin),
	"COS":     oneNumKernel("COS", math.Cos),
	"RADIANS": oneNumKernel("RADIANS", func(x float64) float64 { return x * math.Pi / 180 }),
	"DEGREES": oneNumKernel("DEGREES", func(x float64) float64 { return x * 180 / math.Pi }),
	"UPPER":   oneStrKernel(func(s string) value.Value { return value.String(strings.ToUpper(s)) }),
	"LOWER":   oneStrKernel(func(s string) value.Value { return value.String(strings.ToLower(s)) }),
	"LEN":     oneStrKernel(func(s string) value.Value { return value.Int(int64(len(s))) }),
	"LENGTH":  oneStrKernel(func(s string) value.Value { return value.Int(int64(len(s))) }),
}

var scalar2 = map[string]kernel2{
	"POWER": powerKernel,
	"POW":   powerKernel,
}

func arityErr(name string, want, got int) error {
	return fmt.Errorf("eval: %s expects %d argument(s), got %d", name, want, got)
}

// FuncResultType infers a scalar function's static result type for
// projection schema inference. It lives beside the kernel tables above so
// that adding a function and typing its result happen in one place: a
// string-producing kernel whose type is left to the FLOAT default makes
// the wire codec reject its cells. argType types an argument expression
// (COALESCE is as typed as its first argument); numeric and unknown
// functions default to FLOAT.
func FuncResultType(n *sqlparse.FuncCall, argType func(sqlparse.Expr) value.Type) value.Type {
	switch strings.ToUpper(n.Name) {
	case "UPPER", "LOWER":
		return value.StringType
	case "LEN", "LENGTH":
		return value.IntType
	case "COALESCE":
		if len(n.Args) > 0 {
			return argType(n.Args[0])
		}
	}
	return value.FloatType
}

// evalFunc dispatches scalar functions in the interpreter: arguments are
// evaluated first (matching historical behavior, so an erroring argument
// wins over an arity error), then handed to the shared kernels.
func evalFunc(n *sqlparse.FuncCall, env Env) (value.Value, error) {
	name := strings.ToUpper(n.Name)
	args := make([]value.Value, len(n.Args))
	for i, a := range n.Args {
		v, err := Eval(a, env)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	if f, ok := scalar1[name]; ok {
		if len(args) != 1 {
			return value.Null, arityErr(name, 1, len(args))
		}
		return f(args[0])
	}
	if f, ok := scalar2[name]; ok {
		if len(args) != 2 {
			return value.Null, arityErr(name, 2, len(args))
		}
		return f(args[0], args[1])
	}
	if name == "COALESCE" {
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	}
	return value.Null, fmt.Errorf("eval: unknown function %q", n.Name)
}

// CompareForSort orders two values for ORDER BY: NULLs sort first, then
// value comparison; incomparable types are an error.
func CompareForSort(a, b value.Value) (int, error) {
	switch {
	case a.IsNull() && b.IsNull():
		return 0, nil
	case a.IsNull():
		return -1, nil
	case b.IsNull():
		return 1, nil
	}
	cmp, ok, err := value.Compare(a, b)
	if err != nil {
		return 0, fmt.Errorf("eval: ORDER BY: %w", err)
	}
	if !ok {
		return 0, nil
	}
	return cmp, nil
}

// SortRows stable-sorts rows by the given sort keys (keys[i] are the
// evaluated ORDER BY values of rows[i]) honoring each item's direction.
// The sorted rows are returned; keys and rows are not modified.
func SortRows(rows [][]value.Value, keys [][]value.Value, items []sqlparse.OrderItem) ([][]value.Value, error) {
	if len(rows) != len(keys) {
		return nil, fmt.Errorf("eval: SortRows: %d rows but %d key rows", len(rows), len(keys))
	}
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	var sortErr error
	sort.SliceStable(idx, func(a, b int) bool {
		if sortErr != nil {
			return false
		}
		ka, kb := keys[idx[a]], keys[idx[b]]
		for k := range items {
			cmp, err := CompareForSort(ka[k], kb[k])
			if err != nil {
				sortErr = err
				return false
			}
			if cmp == 0 {
				continue
			}
			if items[k].Desc {
				return cmp > 0
			}
			return cmp < 0
		}
		return false
	})
	if sortErr != nil {
		return nil, sortErr
	}
	out := make([][]value.Value, len(rows))
	for i, j := range idx {
		out[i] = rows[j]
	}
	return out, nil
}
