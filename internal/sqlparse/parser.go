package sqlparse

import (
	"fmt"
	"strconv"
)

// Error categories reported by ParseError.Category.
const (
	// ErrSyntax marks token-level errors: the input is not a sentence of
	// the dialect's grammar.
	ErrSyntax = "syntax"
	// ErrSemantic marks errors in a grammatically valid query: misplaced
	// AREA/XMATCH clauses, bad thresholds, duplicates.
	ErrSemantic = "semantic"
)

// ParseError describes a rejected query with the position of the
// offending token — byte offset plus 1-based line and column, so editors
// and REPLs can point at it — and a coarse Category (ErrSyntax or
// ErrSemantic) distinguishing "not the grammar" from "grammatical but
// meaningless".
type ParseError struct {
	Pos      int // byte offset into the input
	Line     int // 1-based line of Pos (0 when no position is known)
	Col      int // 1-based column of Pos in bytes (0 when unknown)
	Category string
	Msg      string
}

func (e *ParseError) Error() string {
	if e.Line > 0 {
		return fmt.Sprintf("sqlparse: line %d, column %d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("sqlparse: %s", e.Msg)
}

// position converts a byte offset into 1-based line and column.
func position(input string, pos int) (line, col int) {
	if pos > len(input) {
		pos = len(input)
	}
	line, col = 1, 1
	for i := 0; i < pos; i++ {
		if input[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// semanticErr builds a positionless semantic-category ParseError.
func semanticErr(format string, args ...interface{}) *ParseError {
	return &ParseError{Category: ErrSemantic, Msg: fmt.Sprintf(format, args...)}
}

// Parse parses a query in the SkyQuery dialect.
func Parse(input string) (*Query, error) {
	p := &parser{lex: newLexer(input)}
	p.advance()
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after end of query", p.tok.text)
	}
	return q, nil
}

// ParseExpr parses a standalone expression (used for filters in tests and
// for local predicates shipped inside execution plans).
func ParseExpr(input string) (Expr, error) {
	p := &parser{lex: newLexer(input)}
	p.advance()
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.errf("unexpected %q after end of expression", p.tok.text)
	}
	return e, nil
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() {
	p.tok = p.lex.next()
}

func (p *parser) errf(format string, args ...interface{}) error {
	line, col := position(p.lex.input, p.tok.pos)
	return &ParseError{
		Pos: p.tok.pos, Line: line, Col: col,
		Category: ErrSyntax, Msg: fmt.Sprintf(format, args...),
	}
}

// expectKeyword consumes the given keyword or fails.
func (p *parser) expectKeyword(kw string) error {
	if p.tok.kind != tokKeyword || p.tok.text != kw {
		return p.errf("expected %s, got %q", kw, p.tok.text)
	}
	p.advance()
	return nil
}

// expectOp consumes the given operator or fails.
func (p *parser) expectOp(op string) error {
	if p.tok.kind != tokOp || p.tok.text != op {
		return p.errf("expected %q, got %q", op, p.tok.text)
	}
	p.advance()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	return p.tok.kind == tokKeyword && p.tok.text == kw
}

func (p *parser) atOp(op string) bool {
	return p.tok.kind == tokOp && p.tok.text == op
}

func (p *parser) parseQuery() (*Query, error) {
	if p.tok.kind == tokError {
		return nil, p.errf("%s", p.tok.text)
	}
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	if p.atKeyword("TOP") {
		p.advance()
		if p.tok.kind != tokNumber {
			return nil, p.errf("expected number after TOP")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n <= 0 {
			return nil, p.errf("invalid TOP count %q", p.tok.text)
		}
		q.Top = n
		p.advance()
	}
	if p.atKeyword("COUNT") {
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if err := p.expectOp("*"); err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		q.Count = true
	} else {
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			q.Select = append(q.Select, item)
			if !p.atOp(",") {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	for {
		t, err := p.parseTableRef()
		if err != nil {
			return nil, err
		}
		q.From = append(q.From, t)
		if !p.atOp(",") {
			break
		}
		p.advance()
	}
	if p.atKeyword("WHERE") {
		p.advance()
		where, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := extractSpatial(q, where); err != nil {
			return nil, err
		}
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			switch {
			case p.atKeyword("ASC"):
				p.advance()
			case p.atKeyword("DESC"):
				item.Desc = true
				p.advance()
			}
			q.OrderBy = append(q.OrderBy, item)
			if !p.atOp(",") {
				break
			}
			p.advance()
		}
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.atOp("*") {
		p.advance()
		return SelectItem{Expr: &Star{}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("AS") {
		p.advance()
		if p.tok.kind != tokIdent {
			return SelectItem{}, p.errf("expected identifier after AS")
		}
		item.Alias = p.tok.text
		p.advance()
	} else if p.tok.kind == tokIdent {
		item.Alias = p.tok.text
		p.advance()
	}
	return item, nil
}

func (p *parser) parseTableRef() (TableRef, error) {
	if p.tok.kind != tokIdent {
		return TableRef{}, p.errf("expected table name, got %q", p.tok.text)
	}
	t := TableRef{Table: p.tok.text}
	p.advance()
	if p.atOp(":") {
		p.advance()
		if p.tok.kind != tokIdent {
			return TableRef{}, p.errf("expected table name after %q:", t.Table)
		}
		t.Archive = t.Table
		t.Table = p.tok.text
		p.advance()
	}
	if p.tok.kind == tokIdent {
		t.Alias = p.tok.text
		p.advance()
	} else if p.atKeyword("AS") {
		p.advance()
		if p.tok.kind != tokIdent {
			return TableRef{}, p.errf("expected alias after AS")
		}
		t.Alias = p.tok.text
		p.advance()
	}
	return t, nil
}

// Expression grammar, loosest to tightest binding:
// OR, AND, NOT, comparison/IS/IN/BETWEEN/LIKE, +-, */%, unary -, primary.

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	// Optional NOT before IN / BETWEEN / LIKE.
	negated := false
	if p.atKeyword("NOT") {
		negated = true
		p.advance()
		switch {
		case p.atKeyword("IN"), p.atKeyword("BETWEEN"), p.atKeyword("LIKE"):
		default:
			return nil, p.errf("expected IN, BETWEEN or LIKE after NOT")
		}
	}
	switch {
	case p.tok.kind == tokOp && isCompareOp(p.tok.text):
		op := p.tok.text
		if op == "!=" {
			op = "<>"
		}
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r}, nil

	case p.atKeyword("IS"):
		p.advance()
		neg := false
		if p.atKeyword("NOT") {
			neg = true
			p.advance()
		}
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Negated: neg}, nil

	case p.atKeyword("IN"):
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.atOp(",") {
				break
			}
			p.advance()
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, List: list, Negated: negated}, nil

	case p.atKeyword("BETWEEN"):
		p.advance()
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Between{X: l, Lo: lo, Hi: hi, Negated: negated}, nil

	case p.atKeyword("LIKE"):
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		like := Expr(&BinaryExpr{Op: "LIKE", L: l, R: r})
		if negated {
			like = &UnaryExpr{Op: "NOT", X: like}
		}
		return like, nil
	}
	if negated {
		return nil, p.errf("dangling NOT")
	}
	return l, nil
}

func isCompareOp(op string) bool {
	switch op {
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.atOp("+") || p.atOp("-") {
		op := p.tok.text
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.atOp("*") || p.atOp("/") || p.atOp("%") {
		op := p.tok.text
		p.advance()
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.atOp("-") {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", X: x}, nil
	}
	if p.atOp("+") {
		p.advance()
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokError:
		return nil, p.errf("%s", p.tok.text)

	case p.tok.kind == tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.tok.text)
		}
		e := &NumberLit{Value: v, Text: p.tok.text}
		p.advance()
		return e, nil

	case p.tok.kind == tokString:
		e := &StringLit{Value: p.tok.text}
		p.advance()
		return e, nil

	case p.atKeyword("TRUE"):
		p.advance()
		return &BoolLit{Value: true}, nil

	case p.atKeyword("FALSE"):
		p.advance()
		return &BoolLit{Value: false}, nil

	case p.atKeyword("NULL"):
		p.advance()
		return &NullLit{}, nil

	case p.atKeyword("AREA"):
		return p.parseAreaCall()

	case p.atKeyword("XMATCH"):
		return p.parseXMatchCall()

	case p.tok.kind == tokIdent:
		name := p.tok.text
		p.advance()
		if p.atOp("(") {
			p.advance()
			var args []Expr
			if !p.atOp(")") {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.atOp(",") {
						break
					}
					p.advance()
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: name, Args: args}, nil
		}
		if p.atOp(".") {
			p.advance()
			if p.tok.kind != tokIdent {
				return nil, p.errf("expected column after %q.", name)
			}
			col := p.tok.text
			p.advance()
			return &ColumnRef{Table: name, Column: col}, nil
		}
		return &ColumnRef{Column: name}, nil

	case p.atOp("("):
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected %q", p.tok.text)
}

// areaExpr and xmatchExpr are transient markers produced while parsing a
// WHERE clause; extractSpatial hoists them into Query.Area / Query.XMatch
// and rejects them anywhere but as top-level conjuncts.
type areaExpr struct{ clause AreaClause }

type xmatchExpr struct{ clause XMatchClause }

func (*areaExpr) exprNode()   {}
func (*xmatchExpr) exprNode() {}

func (a *areaExpr) String() string { return a.clause.String() }

func (x *xmatchExpr) String() string {
	s := "XMATCH("
	for i, a := range x.clause.Archives {
		if i > 0 {
			s += ", "
		}
		if a.DropOut {
			s += "!"
		}
		s += a.Alias
	}
	return s + ")"
}

func (p *parser) parseAreaCall() (Expr, error) {
	p.advance() // AREA
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var vals []float64
	for {
		if len(vals) > 0 {
			if !p.atOp(",") {
				break
			}
			p.advance()
		}
		neg := false
		if p.atOp("-") {
			neg = true
			p.advance()
		}
		if p.tok.kind != tokNumber {
			return nil, p.errf("AREA expects numeric arguments, got %q", p.tok.text)
		}
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.tok.text)
		}
		if neg {
			v = -v
		}
		vals = append(vals, v)
		p.advance()
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	switch {
	case len(vals) == 3:
		// The paper's circular form: center degrees, radius arc seconds.
		if vals[2] <= 0 {
			return nil, p.errf("AREA radius must be positive, got %v", vals[2])
		}
		return &areaExpr{clause: AreaClause{RA: vals[0], Dec: vals[1], RadiusArcsec: vals[2]}}, nil
	case len(vals) >= 6 && len(vals)%2 == 0:
		// The polygon extension: (ra, dec) vertex pairs.
		clause := AreaClause{}
		for i := 0; i < len(vals); i += 2 {
			clause.Vertices = append(clause.Vertices, [2]float64{vals[i], vals[i+1]})
		}
		return &areaExpr{clause: clause}, nil
	}
	return nil, p.errf("AREA takes (ra, dec, radiusArcsec) or at least three (ra, dec) vertex pairs; got %d arguments", len(vals))
}

func (p *parser) parseXMatchCall() (Expr, error) {
	p.advance() // XMATCH
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var clause XMatchClause
	for {
		drop := false
		if p.atOp("!") {
			drop = true
			p.advance()
		}
		if p.tok.kind != tokIdent {
			return nil, p.errf("XMATCH expects archive aliases, got %q", p.tok.text)
		}
		clause.Archives = append(clause.Archives, XMatchArchive{Alias: p.tok.text, DropOut: drop})
		p.advance()
		if !p.atOp(",") {
			break
		}
		p.advance()
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return &xmatchExpr{clause: clause}, nil
}

// extractSpatial pulls AREA and XMATCH out of the parsed WHERE expression.
// They are only legal as top-level conjuncts; XMATCH must be compared
// against a numeric threshold with < or <=.
func extractSpatial(q *Query, where Expr) error {
	var rest []Expr
	for _, c := range SplitConjuncts(where) {
		switch n := c.(type) {
		case *areaExpr:
			if q.Area != nil {
				return semanticErr("duplicate AREA clause")
			}
			a := n.clause
			q.Area = &a
			continue
		case *xmatchExpr:
			return semanticErr("XMATCH must be compared to a threshold, e.g. XMATCH(O, T) < 3.5")
		case *BinaryExpr:
			if x, ok := n.L.(*xmatchExpr); ok {
				if n.Op != "<" && n.Op != "<=" {
					return semanticErr("XMATCH threshold must use < or <=, got %s", n.Op)
				}
				num, ok := n.R.(*NumberLit)
				if !ok {
					return semanticErr("XMATCH threshold must be a number")
				}
				if num.Value <= 0 {
					return semanticErr("XMATCH threshold must be positive, got %v", num.Value)
				}
				if q.XMatch != nil {
					return semanticErr("duplicate XMATCH clause")
				}
				cl := x.clause
				cl.Threshold = num.Value
				q.XMatch = &cl
				continue
			}
		}
		// Reject spatial markers anywhere deeper in the tree.
		var nested error
		Walk(c, func(e Expr) {
			switch e.(type) {
			case *areaExpr, *xmatchExpr:
				nested = semanticErr("AREA/XMATCH may only appear as top-level AND conditions")
			}
		})
		if nested != nil {
			return nested
		}
		rest = append(rest, c)
	}
	q.Where = Conjoin(rest)
	return nil
}
