package sqlparse

import (
	"strings"
	"testing"
)

// paperQuery is the example cross-match query from §5.2 of the paper
// (with the OCR artifacts of the original text repaired).
const paperQuery = `
SELECT O.object_id, O.right_ascension, T.object_id
FROM SDSS:Photo_Object O, TWOMASS:Photo_Primary T, FIRST:Primary_Object P
WHERE AREA(185.0, -0.5, 4.5)
  AND XMATCH(O, T, P) < 3.5
  AND O.type = 'GALAXY'
  AND (O.i_flux - T.i_flux) > 2`

func TestParsePaperQuery(t *testing.T) {
	q, err := Parse(paperQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 {
		t.Errorf("select items = %d, want 3", len(q.Select))
	}
	if len(q.From) != 3 {
		t.Fatalf("from tables = %d, want 3", len(q.From))
	}
	want := []TableRef{
		{Archive: "SDSS", Table: "Photo_Object", Alias: "O"},
		{Archive: "TWOMASS", Table: "Photo_Primary", Alias: "T"},
		{Archive: "FIRST", Table: "Primary_Object", Alias: "P"},
	}
	for i, w := range want {
		if q.From[i] != w {
			t.Errorf("From[%d] = %+v, want %+v", i, q.From[i], w)
		}
	}
	if q.Area == nil {
		t.Fatal("missing AREA clause")
	}
	if q.Area.RA != 185.0 || q.Area.Dec != -0.5 || q.Area.RadiusArcsec != 4.5 {
		t.Errorf("AREA = %+v", *q.Area)
	}
	if q.XMatch == nil {
		t.Fatal("missing XMATCH clause")
	}
	if q.XMatch.Threshold != 3.5 {
		t.Errorf("threshold = %v", q.XMatch.Threshold)
	}
	if len(q.XMatch.Archives) != 3 {
		t.Fatalf("xmatch archives = %d", len(q.XMatch.Archives))
	}
	for _, a := range q.XMatch.Archives {
		if a.DropOut {
			t.Errorf("archive %s should not be a drop-out", a.Alias)
		}
	}
	if q.Where == nil {
		t.Fatal("residual WHERE should hold the two non-spatial predicates")
	}
	if n := len(SplitConjuncts(q.Where)); n != 2 {
		t.Errorf("residual conjuncts = %d, want 2", n)
	}
}

func TestParseDropOut(t *testing.T) {
	q, err := Parse(`SELECT O.id FROM SDSS:PhotoObject O, TWOMASS:PhotoPrimary T, FIRST:PrimaryObject P
		WHERE AREA(185.0, -0.5, 4.5) AND XMATCH(O, T, !P) < 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if got := q.XMatch.DropOuts(); len(got) != 1 || got[0] != "P" {
		t.Errorf("DropOuts = %v, want [P]", got)
	}
	if got := q.XMatch.Mandatory(); len(got) != 2 || got[0] != "O" || got[1] != "T" {
		t.Errorf("Mandatory = %v, want [O T]", got)
	}
}

func TestParseCount(t *testing.T) {
	q, err := Parse(`SELECT count(*) FROM SDSS:Photo_Object O WHERE AREA(185.0, 0.5, 4.5) AND O.type = 'GALAXY'`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Count {
		t.Error("Count not set")
	}
	if q.Area == nil {
		t.Error("missing AREA")
	}
	if q.Where == nil {
		t.Error("missing residual predicate")
	}
}

func TestParseTop(t *testing.T) {
	q, err := Parse(`SELECT TOP 10 O.id FROM SDSS:T O`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Top != 10 {
		t.Errorf("Top = %d", q.Top)
	}
}

func TestParseStringFixpoint(t *testing.T) {
	queries := []string{
		paperQuery,
		`SELECT a.x FROM A:T1 a, B:T2 b WHERE XMATCH(a, !b) < 2 AND AREA(10, 20, 30)`,
		`SELECT count(*) FROM X:T u WHERE u.flux > 5 AND u.type = 'STAR'`,
		`SELECT a.x AS y FROM A:T1 a WHERE a.x BETWEEN 1 AND 2 OR a.x IN (5, 6, 7)`,
		`SELECT a.x FROM A:T1 a WHERE a.name LIKE 'NGC%' AND a.flag IS NOT NULL`,
		`SELECT TOP 3 a.x FROM A:T1 a WHERE NOT (a.x > 1) AND -a.y < 2e-3`,
		`SELECT a.x FROM A:T1 a WHERE ABS(a.x - 3) * 2 >= a.y % 4 / 2`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		s1 := q1.String()
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse %q: %v", s1, err)
		}
		s2 := q2.String()
		if s1 != s2 {
			t.Errorf("String not a fixpoint:\n first: %s\nsecond: %s", s1, s2)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`FROM X`, "expected SELECT"},
		{`SELECT`, "unexpected"},
		{`SELECT a.x`, "expected FROM"},
		{`SELECT a.x FROM`, "expected table name"},
		{`SELECT a.x FROM A: `, "expected table name after"},
		{`SELECT a.x FROM A:T a WHERE`, "unexpected"},
		{`SELECT a.x FROM A:T a WHERE AREA(1,2)`, "AREA takes"},
		{`SELECT a.x FROM A:T a WHERE AREA(1,2,-3)`, "radius must be positive"},
		{`SELECT a.x FROM A:T a WHERE AREA(1,2,'x')`, "numeric"},
		{`SELECT a.x FROM A:T a WHERE XMATCH(a) > 3`, "< or <="},
		{`SELECT a.x FROM A:T a WHERE XMATCH(a)`, "threshold"},
		{`SELECT a.x FROM A:T a WHERE XMATCH(a) < a.x`, "must be a number"},
		{`SELECT a.x FROM A:T a WHERE XMATCH(a) < 0`, "positive"},
		{`SELECT a.x FROM A:T a WHERE XMATCH(a) < 2 AND XMATCH(a) < 3`, "duplicate XMATCH"},
		{`SELECT a.x FROM A:T a WHERE AREA(1,2,3) AND AREA(1,2,3)`, "duplicate AREA"},
		{`SELECT a.x FROM A:T a WHERE AREA(1,2,3) OR a.x = 1`, "top-level"},
		{`SELECT a.x FROM A:T a WHERE NOT (XMATCH(a) < 3)`, "top-level"},
		{`SELECT a.x FROM A:T a WHERE a.x = 'unterminated`, "unterminated"},
		{`SELECT a.x FROM A:T a WHERE a.x NOT 5`, "expected IN, BETWEEN or LIKE"},
		{`SELECT a.x FROM A:T a; DROP TABLE`, "unexpected"},
		{`SELECT TOP 0 a.x FROM A:T a`, "invalid TOP"},
		{`SELECT TOP x a.x FROM A:T a`, "expected number"},
		{`SELECT a.x FROM A:T a WHERE a.x = #`, "unexpected character"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("Parse(%q) succeeded, want error containing %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestParseExprStandalone(t *testing.T) {
	e, err := ParseExpr(`(O.i_flux - T.i_flux) > 2`)
	if err != nil {
		t.Fatal(err)
	}
	if got := Tables(e); len(got) != 2 || got[0] != "O" || got[1] != "T" {
		t.Errorf("Tables = %v", got)
	}
	if _, err := ParseExpr(`a.x +`); err == nil {
		t.Error("expected error for truncated expression")
	}
	if _, err := ParseExpr(`a.x = 1 garbage`); err == nil {
		t.Error("expected error for trailing tokens")
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e, err := ParseExpr(`1 + 2 * 3 = 7 AND 2 < 3 OR FALSE`)
	if err != nil {
		t.Fatal(err)
	}
	want := `(((1 + (2 * 3)) = 7) AND (2 < 3)) OR FALSE`
	if got := e.String(); got != "("+want+")" {
		t.Errorf("precedence tree = %s", got)
	}
}

func TestStringEscaping(t *testing.T) {
	e, err := ParseExpr(`a.name = 'O''Neill'`)
	if err != nil {
		t.Fatal(err)
	}
	b := e.(*BinaryExpr)
	if got := b.R.(*StringLit).Value; got != "O'Neill" {
		t.Errorf("string value = %q", got)
	}
	// Round trip.
	e2, err := ParseExpr(e.String())
	if err != nil {
		t.Fatal(err)
	}
	if e2.String() != e.String() {
		t.Errorf("escape round trip: %s vs %s", e.String(), e2.String())
	}
}

func TestComments(t *testing.T) {
	q, err := Parse("SELECT a.x -- comment here\nFROM A:T a -- trailing")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.From) != 1 {
		t.Errorf("From = %+v", q.From)
	}
}

func TestCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse(`select a.x from A:T a where area(1, 2, 3) and xmatch(a) < 2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Area == nil || q.XMatch == nil {
		t.Error("lower-case keywords not recognized")
	}
}

func TestNotEqualsNormalization(t *testing.T) {
	e, err := ParseExpr(`a.x != 1`)
	if err != nil {
		t.Fatal(err)
	}
	if e.(*BinaryExpr).Op != "<>" {
		t.Errorf("!= should normalize to <>, got %s", e.(*BinaryExpr).Op)
	}
}

func TestWalkAndColumns(t *testing.T) {
	e, err := ParseExpr(`ABS(O.a + T.b) > 1 AND O.c IS NULL AND T.d IN (1, O.e) AND O.f BETWEEN 1 AND 2`)
	if err != nil {
		t.Fatal(err)
	}
	cols := Columns(e)
	want := []ColumnRef{{"O", "a"}, {"O", "c"}, {"O", "e"}, {"O", "f"}, {"T", "b"}, {"T", "d"}}
	if len(cols) != len(want) {
		t.Fatalf("Columns = %v, want %v", cols, want)
	}
	for i := range want {
		if cols[i] != want[i] {
			t.Errorf("Columns[%d] = %v, want %v", i, cols[i], want[i])
		}
	}
	n := 0
	Walk(e, func(Expr) { n++ })
	if n < 15 {
		t.Errorf("Walk visited only %d nodes", n)
	}
	Walk(nil, func(Expr) { t.Error("Walk(nil) should not call fn") })
}

func TestConjoin(t *testing.T) {
	if Conjoin(nil) != nil {
		t.Error("Conjoin(nil) should be nil")
	}
	a, _ := ParseExpr(`x = 1`)
	b, _ := ParseExpr(`y = 2`)
	e := Conjoin([]Expr{a, nil, b})
	if got := len(SplitConjuncts(e)); got != 2 {
		t.Errorf("conjuncts = %d", got)
	}
	single := Conjoin([]Expr{a})
	if single != a {
		t.Error("Conjoin of one expr should be that expr")
	}
}

func TestUnqualifiedSingleTable(t *testing.T) {
	q, err := Parse(`SELECT id FROM T WHERE flux > 3`)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(q); err != nil {
		t.Errorf("single-table unqualified columns should validate: %v", err)
	}
	if q.From[0].Archive != "" {
		t.Errorf("Archive = %q, want empty", q.From[0].Archive)
	}
}

func TestParsePolygonArea(t *testing.T) {
	q, err := Parse(`SELECT a.x FROM A:T a WHERE AREA(10, 10, 20, 10, 20, 20, 10, 20) AND XMATCH(a) < 2`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Area == nil || !q.Area.IsPolygon() {
		t.Fatalf("Area = %+v", q.Area)
	}
	if len(q.Area.Vertices) != 4 {
		t.Errorf("vertices = %d", len(q.Area.Vertices))
	}
	if q.Area.Vertices[0] != [2]float64{10, 10} || q.Area.Vertices[2] != [2]float64{20, 20} {
		t.Errorf("vertices = %v", q.Area.Vertices)
	}
	// Fixpoint through String().
	s1 := q.String()
	q2, err := Parse(s1)
	if err != nil {
		t.Fatalf("reparse %q: %v", s1, err)
	}
	if q2.String() != s1 {
		t.Errorf("polygon AREA not a String fixpoint: %s vs %s", s1, q2.String())
	}
}

func TestParsePolygonAreaNegatives(t *testing.T) {
	q, err := Parse(`SELECT a.x FROM A:T a WHERE AREA(-10, -5, 10, -5, 10, 5, -10, 5)`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Area.Vertices[0] != [2]float64{-10, -5} {
		t.Errorf("vertices = %v", q.Area.Vertices)
	}
}

func TestParsePolygonAreaErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT a.x FROM A:T a WHERE AREA(1, 2, 3, 4)`,    // 2 pairs
		`SELECT a.x FROM A:T a WHERE AREA(1, 2, 3, 4, 5)`, // odd > 3
		`SELECT a.x FROM A:T a WHERE AREA()`,              // empty
		`SELECT a.x FROM A:T a WHERE AREA(1)`,             // single
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseOrderBy(t *testing.T) {
	q, err := Parse(`SELECT a.x FROM A:T a WHERE a.x > 0 ORDER BY a.y DESC, a.x, ABS(a.z) ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.OrderBy) != 3 {
		t.Fatalf("order items = %d", len(q.OrderBy))
	}
	if !q.OrderBy[0].Desc || q.OrderBy[1].Desc || q.OrderBy[2].Desc {
		t.Errorf("directions = %+v", q.OrderBy)
	}
	// Fixpoint through String().
	s1 := q.String()
	q2, err := Parse(s1)
	if err != nil {
		t.Fatalf("reparse %q: %v", s1, err)
	}
	if q2.String() != s1 {
		t.Errorf("ORDER BY not a String fixpoint: %s vs %s", s1, q2.String())
	}
}

func TestParseOrderByErrors(t *testing.T) {
	for _, src := range []string{
		`SELECT a.x FROM A:T a ORDER a.x`,
		`SELECT a.x FROM A:T a ORDER BY`,
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}
