package sqlparse

// Native Go fuzz targets for the dialect parser. The parser is the
// federation's outermost attack surface — the Portal hands it raw strings
// straight off the SOAP wire — so it must return errors, never panic, on
// arbitrary input. Seeds mirror the hand-written corpus in parser_test.go;
// additional regression inputs live in testdata/fuzz/.
//
//	go test -fuzz=FuzzParse -fuzztime=30s ./internal/sqlparse
//	go test -fuzz=FuzzParseExpr -fuzztime=30s ./internal/sqlparse

import (
	"testing"
)

var fuzzQuerySeeds = []string{
	paperQuery,
	`SELECT O.id FROM SDSS:PhotoObject O, TWOMASS:PhotoPrimary T, FIRST:PrimaryObject P
	 WHERE AREA(185, -0.5, 120) AND XMATCH(O, T, !P) < 2.5`,
	`SELECT count(*) FROM SDSS:Photo_Object O WHERE AREA(185.0, 0.5, 4.5) AND O.type = 'GALAXY'`,
	`SELECT TOP 10 O.id FROM SDSS:T O`,
	`SELECT a.x FROM A:T a WHERE AREA(10, 10, 20, 10, 20, 20, 10, 20) AND XMATCH(a) < 2`,
	`select a.x from A:T a where area(1, 2, 3) and xmatch(a) < 2.5`,
	"SELECT a.x -- comment here\nFROM A:T a -- trailing",
	`SELECT id FROM T WHERE flux > 3`,
	`SELECT * FROM`,
	`SELECT O.id FROM SDSS:T O WHERE O.name = 'O''Neill'`,
	``,
	`'unterminated`,
	`SELECT O.id FROM SDSS:T O WHERE O.x BETWEEN 1 AND`,
	"\x00\xff\xfe",
}

var fuzzExprSeeds = []string{
	`(O.i_flux - T.i_flux) > 2`,
	`1 + 2 * 3 = 7 AND 2 < 3 OR FALSE`,
	`a.name = 'O''Neill'`,
	`a.x != 1`,
	`ABS(O.a + T.b) > 1 AND O.c IS NULL AND T.d IN (1, O.e) AND O.f BETWEEN 1 AND 2`,
	`a.x +`,
	`a.x = 1 garbage`,
	`NOT NOT NOT x`,
	`((((((((((1))))))))))`,
	`x LIKE '%''%'`,
	``,
	`-`,
	`1e999`,
}

// FuzzParse asserts Parse returns a query or an error — never a panic —
// and that anything it accepts round-trips through String back into a
// parseable query (the fixpoint property TestParseStringFixpoint checks
// for the curated corpus).
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzQuerySeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", src)
		}
		printed := q.String()
		if _, err := Parse(printed); err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, printed, err)
		}
	})
}

// FuzzParseExpr is the standalone-expression variant used for the plan's
// LocalWhere/CrossWhere strings, which nodes re-parse off the wire.
func FuzzParseExpr(f *testing.F) {
	for _, seed := range fuzzExprSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		e, err := ParseExpr(src)
		if err != nil {
			return
		}
		if e == nil {
			t.Fatalf("ParseExpr(%q) returned nil expr and nil error", src)
		}
		printed := e.String()
		if _, err := ParseExpr(printed); err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", src, printed, err)
		}
	})
}
