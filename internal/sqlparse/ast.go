package sqlparse

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query is a parsed cross-match (or plain) query.
type Query struct {
	// Count is true for SELECT COUNT(*) queries (the Portal's
	// "performance queries" are of this form).
	Count bool
	// Select lists the projected items; empty when Count is true.
	Select []SelectItem
	// From lists the archive-qualified tables.
	From []TableRef
	// Area is the AREA clause, if present.
	Area *AreaClause
	// XMatch is the XMATCH clause, if present.
	XMatch *XMatchClause
	// Where holds the remaining (non-spatial) predicate as a single
	// expression, or nil. AREA and XMATCH have already been stripped out.
	Where Expr
	// OrderBy sorts the result before TOP is applied.
	OrderBy []OrderItem
	// Top limits the result to the first N tuples when > 0.
	Top int
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SelectItem is one projected expression with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
}

// TableRef names a table inside a federated archive, e.g. SDSS:PhotoObject O.
type TableRef struct {
	Archive string // empty for unqualified (single local database) queries
	Table   string
	Alias   string // defaults to the table name
}

// Name returns the alias if set, else the table name.
func (t TableRef) Name() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Table
}

// AreaClause is the sky range of a query. The paper's form is
// AREA(ra, dec, radiusArcsec) — a circle centered at (ra, dec) degrees
// with the radius in arc seconds. The polygon extension the paper lists
// as future work (§6) is AREA(ra1, dec1, ra2, dec2, ra3, dec3, ...):
// at least three (ra, dec) vertex pairs in degrees, counter-clockwise,
// forming a convex spherical polygon. Vertices is nil for circles.
type AreaClause struct {
	RA, Dec      float64
	RadiusArcsec float64
	// Vertices holds the polygon corners as (ra, dec) degree pairs; nil
	// means the circular form.
	Vertices [][2]float64
}

// IsPolygon reports whether the clause uses the polygon extension.
func (a *AreaClause) IsPolygon() bool { return len(a.Vertices) > 0 }

// String renders the clause in dialect syntax.
func (a *AreaClause) String() string {
	if a.IsPolygon() {
		var sb strings.Builder
		sb.WriteString("AREA(")
		for i, v := range a.Vertices {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%s, %s", formatFloat(v[0]), formatFloat(v[1]))
		}
		sb.WriteString(")")
		return sb.String()
	}
	return fmt.Sprintf("AREA(%s, %s, %s)",
		formatFloat(a.RA), formatFloat(a.Dec), formatFloat(a.RadiusArcsec))
}

// XMatchArchive is one entry of an XMATCH clause: an alias, possibly
// negated ("!P") to mark a drop-out archive.
type XMatchArchive struct {
	Alias   string
	DropOut bool
}

// XMatchClause is XMATCH(a, b, !c) < t: the tuple of archives joined
// probabilistically, and the threshold in units of standard deviations.
type XMatchClause struct {
	Archives  []XMatchArchive
	Threshold float64
}

// Mandatory returns the aliases of the non-drop-out archives in clause order.
func (x *XMatchClause) Mandatory() []string {
	var out []string
	for _, a := range x.Archives {
		if !a.DropOut {
			out = append(out, a.Alias)
		}
	}
	return out
}

// DropOuts returns the aliases of the drop-out archives in clause order.
func (x *XMatchClause) DropOuts() []string {
	var out []string
	for _, a := range x.Archives {
		if a.DropOut {
			out = append(out, a.Alias)
		}
	}
	return out
}

// Expr is a node of an expression tree.
type Expr interface {
	fmt.Stringer
	// exprNode restricts implementations to this package.
	exprNode()
}

// BinaryExpr is a binary operation: arithmetic, comparison, AND/OR, LIKE.
type BinaryExpr struct {
	Op   string // "+", "-", "*", "/", "%", "=", "<>", "<", "<=", ">", ">=", "AND", "OR", "LIKE"
	L, R Expr
}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

// ColumnRef references table.column (Table may be empty in single-table
// contexts).
type ColumnRef struct {
	Table  string
	Column string
}

// NumberLit is a numeric literal.
type NumberLit struct {
	Value float64
	// Text preserves the source spelling for faithful round-tripping.
	Text string
}

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is TRUE or FALSE.
type BoolLit struct{ Value bool }

// NullLit is NULL.
type NullLit struct{}

// FuncCall is a function application, e.g. ABS(x). COUNT(*) is represented
// at the Query level, not as a FuncCall.
type FuncCall struct {
	Name string
	Args []Expr
}

// IsNull is "x IS NULL" (Negated: IS NOT NULL).
type IsNull struct {
	X       Expr
	Negated bool
}

// InList is "x IN (a, b, c)" (Negated: NOT IN).
type InList struct {
	X       Expr
	List    []Expr
	Negated bool
}

// Between is "x BETWEEN lo AND hi" (Negated: NOT BETWEEN).
type Between struct {
	X, Lo, Hi Expr
	Negated   bool
}

// Star is the "*" projection (only valid in select lists).
type Star struct{}

func (*BinaryExpr) exprNode() {}
func (*UnaryExpr) exprNode()  {}
func (*ColumnRef) exprNode()  {}
func (*NumberLit) exprNode()  {}
func (*StringLit) exprNode()  {}
func (*BoolLit) exprNode()    {}
func (*NullLit) exprNode()    {}
func (*FuncCall) exprNode()   {}
func (*IsNull) exprNode()     {}
func (*InList) exprNode()     {}
func (*Between) exprNode()    {}
func (*Star) exprNode()       {}

func (e *BinaryExpr) String() string {
	switch e.Op {
	case "AND", "OR", "LIKE":
		return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
	default:
		return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R)
	}
}

func (e *UnaryExpr) String() string {
	if e.Op == "NOT" {
		return fmt.Sprintf("(NOT %s)", e.X)
	}
	return fmt.Sprintf("(%s%s)", e.Op, e.X)
}

func (e *ColumnRef) String() string {
	if e.Table == "" {
		return e.Column
	}
	return e.Table + "." + e.Column
}

func (e *NumberLit) String() string {
	if e.Text != "" {
		return e.Text
	}
	return strconv.FormatFloat(e.Value, 'g', -1, 64)
}

func (e *StringLit) String() string {
	return "'" + strings.ReplaceAll(e.Value, "'", "''") + "'"
}

func (e *BoolLit) String() string {
	if e.Value {
		return "TRUE"
	}
	return "FALSE"
}

func (*NullLit) String() string { return "NULL" }

func (e *FuncCall) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Name, strings.Join(args, ", "))
}

func (e *IsNull) String() string {
	if e.Negated {
		return fmt.Sprintf("(%s IS NOT NULL)", e.X)
	}
	return fmt.Sprintf("(%s IS NULL)", e.X)
}

func (e *InList) String() string {
	items := make([]string, len(e.List))
	for i, a := range e.List {
		items[i] = a.String()
	}
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sIN (%s))", e.X, not, strings.Join(items, ", "))
}

func (e *Between) String() string {
	not := ""
	if e.Negated {
		not = "NOT "
	}
	return fmt.Sprintf("(%s %sBETWEEN %s AND %s)", e.X, not, e.Lo, e.Hi)
}

func (*Star) String() string { return "*" }

// String renders the query back into dialect syntax. Parsing the result
// yields an equivalent query (tested as a fixpoint).
func (q *Query) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Top > 0 {
		fmt.Fprintf(&sb, "TOP %d ", q.Top)
	}
	if q.Count {
		sb.WriteString("COUNT(*)")
	} else {
		for i, s := range q.Select {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(s.Expr.String())
			if s.Alias != "" {
				sb.WriteString(" AS " + s.Alias)
			}
		}
	}
	sb.WriteString(" FROM ")
	for i, t := range q.From {
		if i > 0 {
			sb.WriteString(", ")
		}
		if t.Archive != "" {
			sb.WriteString(t.Archive + ":")
		}
		sb.WriteString(t.Table)
		if t.Alias != "" {
			sb.WriteString(" " + t.Alias)
		}
	}
	var conds []string
	if q.Area != nil {
		conds = append(conds, q.Area.String())
	}
	if q.XMatch != nil {
		var names []string
		for _, a := range q.XMatch.Archives {
			if a.DropOut {
				names = append(names, "!"+a.Alias)
			} else {
				names = append(names, a.Alias)
			}
		}
		conds = append(conds, fmt.Sprintf("XMATCH(%s) < %s",
			strings.Join(names, ", "), formatFloat(q.XMatch.Threshold)))
	}
	if q.Where != nil {
		conds = append(conds, q.Where.String())
	}
	if len(conds) > 0 {
		sb.WriteString(" WHERE " + strings.Join(conds, " AND "))
	}
	if len(q.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range q.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.String())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	return sb.String()
}

func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// Walk calls fn for every node of the expression tree rooted at e,
// parents before children. It tolerates nil expressions.
func Walk(e Expr, fn func(Expr)) {
	if e == nil {
		return
	}
	fn(e)
	switch n := e.(type) {
	case *BinaryExpr:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *UnaryExpr:
		Walk(n.X, fn)
	case *FuncCall:
		for _, a := range n.Args {
			Walk(a, fn)
		}
	case *IsNull:
		Walk(n.X, fn)
	case *InList:
		Walk(n.X, fn)
		for _, a := range n.List {
			Walk(a, fn)
		}
	case *Between:
		Walk(n.X, fn)
		Walk(n.Lo, fn)
		Walk(n.Hi, fn)
	}
}

// Tables returns the sorted set of table qualifiers referenced by the
// expression. An empty qualifier (bare column) is reported as "".
func Tables(e Expr) []string {
	set := map[string]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*ColumnRef); ok {
			set[c.Table] = true
		}
	})
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Columns returns the sorted distinct column references in the expression.
func Columns(e Expr) []ColumnRef {
	set := map[ColumnRef]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*ColumnRef); ok {
			set[*c] = true
		}
	})
	out := make([]ColumnRef, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Table != out[j].Table {
			return out[i].Table < out[j].Table
		}
		return out[i].Column < out[j].Column
	})
	return out
}

// SplitConjuncts flattens a tree of AND nodes into its conjuncts.
func SplitConjuncts(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*BinaryExpr); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []Expr{e}
}

// Conjoin joins expressions with AND; nil for an empty list.
func Conjoin(es []Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}
