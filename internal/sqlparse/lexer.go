// Package sqlparse implements the SkyQuery SQL dialect: standard
// single-block SELECT syntax extended with the two spatial clauses the
// paper introduces in §5.2 — AREA (a circular sky range) and XMATCH (a
// probabilistic spatial join across archives, with "!" marking drop-out
// archives). Tables are qualified by archive, SDSS:PhotoObject style.
//
// The package also performs the query decomposition the Portal needs
// (§5.3): splitting the WHERE clause into per-archive local predicates,
// cross-archive predicates, and the two spatial clauses.
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokOp    // operators and punctuation: + - * / % = <> != < <= > >= ( ) , . : !
	tokError // lexer error; text holds the message
)

// token is a single lexical token with its position for error messages.
type token struct {
	kind tokenKind
	text string
	pos  int // byte offset in the input
}

// keywords of the dialect, all matched case-insensitively.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true,
	"AND": true, "OR": true, "NOT": true,
	"AS": true, "NULL": true, "TRUE": true, "FALSE": true,
	"LIKE": true, "IN": true, "IS": true, "BETWEEN": true,
	"AREA": true, "XMATCH": true, "COUNT": true, "TOP": true,
	"ORDER": true, "BY": true, "ASC": true, "DESC": true, "REGION": true,
}

// lexer produces tokens from an input string.
type lexer struct {
	input string
	pos   int
}

func newLexer(input string) *lexer { return &lexer{input: input} }

func (l *lexer) errorf(pos int, format string, args ...interface{}) token {
	return token{kind: tokError, text: fmt.Sprintf(format, args...), pos: pos}
}

// next returns the next token.
func (l *lexer) next() token {
	// Skip whitespace and comments.
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.input) && l.input[l.pos+1] == '-':
			// -- line comment
			for l.pos < len(l.input) && l.input[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
scan:
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.input) && isIdentPart(rune(l.input[l.pos])) {
			l.pos++
		}
		text := l.input[start:l.pos]
		if keywords[strings.ToUpper(text)] {
			return token{kind: tokKeyword, text: strings.ToUpper(text), pos: start}
		}
		return token{kind: tokIdent, text: text, pos: start}

	case c >= '0' && c <= '9' || c == '.' && l.pos+1 < len(l.input) && l.input[l.pos+1] >= '0' && l.input[l.pos+1] <= '9':
		seenDot := false
		seenExp := false
		for l.pos < len(l.input) {
			d := l.input[l.pos]
			switch {
			case d >= '0' && d <= '9':
				l.pos++
			case d == '.' && !seenDot && !seenExp:
				seenDot = true
				l.pos++
			case (d == 'e' || d == 'E') && !seenExp && l.pos+1 < len(l.input) &&
				(isDigit(l.input[l.pos+1]) || ((l.input[l.pos+1] == '+' || l.input[l.pos+1] == '-') && l.pos+2 < len(l.input) && isDigit(l.input[l.pos+2]))):
				seenExp = true
				l.pos++
				if l.input[l.pos] == '+' || l.input[l.pos] == '-' {
					l.pos++
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}

	case c == '\'':
		l.pos++
		var sb strings.Builder
		for l.pos < len(l.input) {
			if l.input[l.pos] == '\'' {
				// '' escapes a quote, SQL style.
				if l.pos+1 < len(l.input) && l.input[l.pos+1] == '\'' {
					sb.WriteByte('\'')
					l.pos += 2
					continue
				}
				l.pos++
				return token{kind: tokString, text: sb.String(), pos: start}
			}
			sb.WriteByte(l.input[l.pos])
			l.pos++
		}
		return l.errorf(start, "unterminated string literal")

	default:
		// Multi-character operators first.
		two := ""
		if l.pos+1 < len(l.input) {
			two = l.input[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "!=", "<=", ">=":
			l.pos += 2
			return token{kind: tokOp, text: two, pos: start}
		}
		switch c {
		case '+', '-', '*', '/', '%', '=', '<', '>', '(', ')', ',', '.', ':', '!':
			l.pos++
			return token{kind: tokOp, text: string(c), pos: start}
		}
		l.pos++
		return l.errorf(start, "unexpected character %q", c)
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(b byte) bool { return b >= '0' && b <= '9' }
