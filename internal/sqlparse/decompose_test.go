package sqlparse

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Query {
	t.Helper()
	q, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestValidateOK(t *testing.T) {
	q := mustParse(t, paperQuery)
	if err := Validate(q); err != nil {
		t.Errorf("paper query should validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		src, wantSub string
	}{
		{`SELECT a.x FROM A:T a, B:T a WHERE a.x = 1`, "duplicate table alias"},
		{`SELECT a.x FROM A:T a WHERE XMATCH(z) < 2`, "unknown alias"},
		{`SELECT a.x FROM A:T a, B:T b WHERE XMATCH(a, a) < 2`, "twice"},
		{`SELECT a.x FROM A:T a, B:T b WHERE XMATCH(!a, !b) < 2`, "at least one mandatory"},
		{`SELECT z.x FROM A:T a, B:T b`, "unknown alias"},
		{`SELECT x FROM A:T a, B:T b`, "must be qualified"},
		{`SELECT a.x FROM A:T a, B:T b WHERE z.q = 1`, "unknown alias"},
		{`SELECT a.x FROM A:T a, B:T b WHERE q = 1`, "must be qualified"},
	}
	for _, c := range cases {
		q, err := Parse(c.src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.src, err)
		}
		err = Validate(q)
		if err == nil {
			t.Errorf("Validate(%q) succeeded, want error with %q", c.src, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Validate(%q) error = %q, want substring %q", c.src, err, c.wantSub)
		}
	}
}

func TestDecomposePaperQuery(t *testing.T) {
	q := mustParse(t, paperQuery)
	d := Decompose(q)
	// O.type = 'GALAXY' is local to O.
	oLocal, ok := d.Local["O"]
	if !ok || oLocal == nil {
		t.Fatal("expected local predicate for O")
	}
	if tabs := Tables(oLocal); len(tabs) != 1 || tabs[0] != "O" {
		t.Errorf("O local predicate references %v", tabs)
	}
	if _, ok := d.Local["T"]; ok {
		t.Error("T should have no local predicate")
	}
	// (O.i_flux - T.i_flux) > 2 is a cross predicate on O and T.
	if len(d.Cross) != 1 {
		t.Fatalf("cross predicates = %d, want 1", len(d.Cross))
	}
	if a := d.Cross[0].Aliases; len(a) != 2 || a[0] != "O" || a[1] != "T" {
		t.Errorf("cross aliases = %v", a)
	}
}

func TestDecomposeConstantPredicate(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM A:T a, B:T b WHERE 1 = 1 AND a.x > 0`)
	d := Decompose(q)
	// The constant conjunct attaches to the first archive.
	if d.Local["a"] == nil {
		t.Fatal("expected predicates on a")
	}
	if got := len(SplitConjuncts(d.Local["a"])); got != 2 {
		t.Errorf("a conjuncts = %d, want 2 (constant + local)", got)
	}
}

func TestDecomposeUnqualifiedSingleTable(t *testing.T) {
	q := mustParse(t, `SELECT id FROM T WHERE flux > 3`)
	d := Decompose(q)
	if d.Local["T"] == nil {
		t.Error("unqualified predicate should be local to the only table")
	}
}

func TestColumnsFor(t *testing.T) {
	q := mustParse(t, paperQuery)
	d := Decompose(q)
	oCols := d.ColumnsFor(q, "O")
	// Select list: object_id, right_ascension; cross predicate: i_flux.
	want := []string{"i_flux", "object_id", "right_ascension"}
	if len(oCols) != len(want) {
		t.Fatalf("ColumnsFor(O) = %v, want %v", oCols, want)
	}
	for i := range want {
		if oCols[i] != want[i] {
			t.Errorf("ColumnsFor(O)[%d] = %q, want %q", i, oCols[i], want[i])
		}
	}
	tCols := d.ColumnsFor(q, "T")
	wantT := []string{"i_flux", "object_id"}
	if len(tCols) != len(wantT) {
		t.Fatalf("ColumnsFor(T) = %v, want %v", tCols, wantT)
	}
	// P contributes nothing to the select list and no cross predicates.
	if pCols := d.ColumnsFor(q, "P"); len(pCols) != 0 {
		t.Errorf("ColumnsFor(P) = %v, want empty", pCols)
	}
}

func TestSelectColumnsFor(t *testing.T) {
	q := mustParse(t, `SELECT a.x + a.y AS s, b.z FROM A:T a, B:T b`)
	if got := SelectColumnsFor(q, "a"); len(got) != 2 || got[0] != "x" || got[1] != "y" {
		t.Errorf("SelectColumnsFor(a) = %v", got)
	}
	if got := SelectColumnsFor(q, "b"); len(got) != 1 || got[0] != "z" {
		t.Errorf("SelectColumnsFor(b) = %v", got)
	}
}

func TestCrossPredicatesReadyAt(t *testing.T) {
	q := mustParse(t, `SELECT a.x FROM A:T a, B:T b, C:T c
		WHERE XMATCH(a, b, c) < 3 AND a.x - b.x > 1 AND b.y - c.y > 2`)
	d := Decompose(q)
	if len(d.Cross) != 2 {
		t.Fatalf("cross = %d", len(d.Cross))
	}
	// After only a: nothing ready.
	if got := d.CrossPredicatesReadyAt("a", map[string]bool{"a": true}); len(got) != 0 {
		t.Errorf("ready at a = %v", got)
	}
	// b joins after a: the a-b predicate fires at b.
	got := d.CrossPredicatesReadyAt("b", map[string]bool{"a": true, "b": true})
	if len(got) != 1 {
		t.Fatalf("ready at b = %d exprs", len(got))
	}
	// c joins last: the b-c predicate fires at c.
	got = d.CrossPredicatesReadyAt("c", map[string]bool{"a": true, "b": true, "c": true})
	if len(got) != 1 {
		t.Fatalf("ready at c = %d exprs", len(got))
	}
	// Chain in reverse order: at a (last), only the a-b predicate fires.
	got = d.CrossPredicatesReadyAt("a", map[string]bool{"a": true, "b": true, "c": true})
	if len(got) != 1 {
		t.Fatalf("ready at a (all available) = %d exprs", len(got))
	}
}
