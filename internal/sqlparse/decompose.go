package sqlparse

import (
	"fmt"
	"sort"
)

// Decomposition is the Portal-side split of a cross-match query (§5.3):
// which predicate runs where, and which columns each archive must ship
// along the daisy chain.
type Decomposition struct {
	// Local maps an alias to the conjunction of predicates that reference
	// only that alias (nil if none). These run entirely at that SkyNode,
	// both in its performance query and in its chain step.
	Local map[string]Expr
	// Cross lists predicates referencing two or more aliases. Each is
	// evaluated at the chain step where its last referenced alias becomes
	// available.
	Cross []CrossPredicate
}

// CrossPredicate is a predicate spanning archives.
type CrossPredicate struct {
	Expr    Expr
	Aliases []string // sorted aliases referenced
}

// Validate checks a federated query for semantic errors: unknown aliases,
// duplicate aliases, missing XMATCH archives, bare columns.
func Validate(q *Query) error {
	aliases := map[string]bool{}
	for _, t := range q.From {
		name := t.Name()
		if aliases[name] {
			return fmt.Errorf("sqlparse: duplicate table alias %q", name)
		}
		aliases[name] = true
	}
	if q.XMatch != nil {
		seen := map[string]bool{}
		mandatory := 0
		for _, a := range q.XMatch.Archives {
			if !aliases[a.Alias] {
				return fmt.Errorf("sqlparse: XMATCH references unknown alias %q", a.Alias)
			}
			if seen[a.Alias] {
				return fmt.Errorf("sqlparse: XMATCH lists alias %q twice", a.Alias)
			}
			seen[a.Alias] = true
			if !a.DropOut {
				mandatory++
			}
		}
		if mandatory == 0 {
			return fmt.Errorf("sqlparse: XMATCH needs at least one mandatory (non drop-out) archive")
		}
	}
	check := func(e Expr, where string) error {
		var err error
		Walk(e, func(n Expr) {
			if err != nil {
				return
			}
			if c, ok := n.(*ColumnRef); ok {
				if c.Table == "" {
					if len(q.From) == 1 {
						return // unambiguous single-table query
					}
					err = fmt.Errorf("sqlparse: column %q in %s must be qualified with a table alias", c.Column, where)
					return
				}
				if !aliases[c.Table] {
					err = fmt.Errorf("sqlparse: %s references unknown alias %q", where, c.Table)
				}
			}
		})
		return err
	}
	for _, s := range q.Select {
		if _, ok := s.Expr.(*Star); ok {
			continue
		}
		if err := check(s.Expr, "select list"); err != nil {
			return err
		}
	}
	if err := check(q.Where, "WHERE clause"); err != nil {
		return err
	}
	for _, o := range q.OrderBy {
		if err := check(o.Expr, "ORDER BY"); err != nil {
			return err
		}
	}
	return nil
}

// Decompose splits the residual WHERE clause into per-archive local
// predicates and cross-archive predicates. Validate should have succeeded
// first.
func Decompose(q *Query) Decomposition {
	d := Decomposition{Local: map[string]Expr{}}
	var local = map[string][]Expr{}
	for _, c := range SplitConjuncts(q.Where) {
		tables := Tables(c)
		// An unqualified column in a single-table query belongs to that table.
		if len(tables) == 1 && tables[0] == "" && len(q.From) == 1 {
			tables[0] = q.From[0].Name()
		}
		switch len(tables) {
		case 0:
			// A constant predicate; attach it to the first archive so it is
			// still enforced (cheaply, once).
			if len(q.From) > 0 {
				name := q.From[0].Name()
				local[name] = append(local[name], c)
			}
		case 1:
			local[tables[0]] = append(local[tables[0]], c)
		default:
			d.Cross = append(d.Cross, CrossPredicate{Expr: c, Aliases: tables})
		}
	}
	for alias, preds := range local {
		d.Local[alias] = Conjoin(preds)
	}
	return d
}

// SelectColumnsFor returns the sorted distinct columns of the given alias
// used anywhere in the select list or ORDER BY keys.
func SelectColumnsFor(q *Query, alias string) []string {
	set := map[string]bool{}
	collect := func(e Expr) {
		Walk(e, func(n Expr) {
			if c, ok := n.(*ColumnRef); ok && c.Table == alias {
				set[c.Column] = true
			}
		})
	}
	for _, s := range q.Select {
		collect(s.Expr)
	}
	for _, o := range q.OrderBy {
		collect(o.Expr)
	}
	return sortedKeys(set)
}

// ColumnsFor returns the sorted distinct columns of the given alias that
// the archive must ship: select-list columns plus columns used by
// cross-archive predicates.
func (d Decomposition) ColumnsFor(q *Query, alias string) []string {
	set := map[string]bool{}
	for _, c := range SelectColumnsFor(q, alias) {
		set[c] = true
	}
	for _, cp := range d.Cross {
		Walk(cp.Expr, func(n Expr) {
			if c, ok := n.(*ColumnRef); ok && c.Table == alias {
				set[c.Column] = true
			}
		})
	}
	return sortedKeys(set)
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// CrossPredicatesReadyAt returns the cross predicates whose referenced
// aliases are all contained in the available set — i.e. the predicates that
// can be evaluated once `alias` joins the chain, given the aliases seen so
// far (available must already include alias).
func (d Decomposition) CrossPredicatesReadyAt(alias string, available map[string]bool) []Expr {
	var out []Expr
	for _, cp := range d.Cross {
		uses := false
		ready := true
		for _, a := range cp.Aliases {
			if a == alias {
				uses = true
			}
			if !available[a] {
				ready = false
			}
		}
		if uses && ready {
			out = append(out, cp.Expr)
		}
	}
	return out
}
