package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"skyquery"
	"skyquery/internal/value"
)

// paperQuery is the §5.2 example adapted to the synthetic schema (the
// AREA radius 900" spans the generated 0.25° field).
const paperQuery = `
	SELECT O.object_id, T.object_id, P.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5
	AND O.type = 'GALAXY' AND (O.flux - T.flux) > 2`

// F1Federation reproduces Figure 1: the full architecture live over HTTP
// sockets — registration handshake, the four node services, chunked SOAP
// transport, and a client query through the Portal.
func F1Federation() (*Table, error) {
	fed, err := skyquery.Launch(skyquery.Options{Bodies: 2000, RecordCalls: true})
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	t := &Table{
		ID:     "F1",
		Title:  "Figure 1 — federation architecture live over HTTP",
		Header: []string{"phase", "metric", "value"},
	}
	// Registration handshake traffic (Register -> Metadata + Information
	// call-backs happened during Launch).
	calls := fed.Transport.Calls()
	handshake := map[string]int{}
	for _, c := range calls {
		handshake[short(c.Action)]++
	}
	t.Add("join", "federation members", fmt.Sprint(fed.Portal.Archives()))
	t.Add("join", "Metadata call-backs", handshake["Metadata"])
	t.Add("join", "Information call-backs", handshake["Information"])

	fed.Transport.Reset()
	res, err := fed.Client().Query(context.Background(), paperQuery)
	if err != nil {
		return nil, err
	}
	stats := fed.Transport.Stats()
	t.Add("query", "cross matches", res.NumRows())
	t.Add("query", "SOAP requests", stats.Requests)
	t.Add("query", "bytes sent", stats.BytesSent)
	t.Add("query", "bytes received", stats.BytesReceived)
	perAction := map[string]int{}
	for _, c := range fed.Transport.Calls() {
		perAction[short(c.Action)]++
	}
	for _, action := range []string{"SkyQuery", "Query", "CrossMatch", "Fetch"} {
		t.Add("query", action+" calls", perAction[action])
	}
	t.Notes = append(t.Notes,
		"every component interoperates only through SOAP envelopes over HTTP, as in Figure 1")
	return t, nil
}

func short(action string) string {
	if i := strings.LastIndexByte(action, ':'); i >= 0 {
		return action[i+1:]
	}
	return action
}

// F2XMatchSemantics reproduces Figure 2 exactly: bodies a and b, three
// archives O, T, P; the set {aO,aT,aP} satisfies XMATCH(O,T,P) while
// {bO,bT} satisfies XMATCH(O,T,!P) because bP is out of range.
func F2XMatchSemantics() (*Table, error) {
	fed, err := figure2Federation()
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	t := &Table{
		ID:     "F2",
		Title:  "Figure 2 — XMATCH selection with and without drop-out",
		Header: []string{"clause", "selected set", "interpretation"},
	}
	all, err := fed.Query(context.Background(), `SELECT O.body, T.body, P.body
		FROM O:Obs O, T:Obs T, P:Obs P
		WHERE AREA(185.0, -0.5, 60) AND XMATCH(O, T, P) < 3.5`)
	if err != nil {
		return nil, err
	}
	for _, row := range all.Rows {
		t.Add("XMATCH(O,T,P) < 3.5",
			fmt.Sprintf("{%sO, %sT, %sP}", row[0].AsString(), row[1].AsString(), row[2].AsString()),
			"all three observations within the error bound")
	}
	drop, err := fed.Query(context.Background(), `SELECT O.body, T.body
		FROM O:Obs O, T:Obs T, P:Obs P
		WHERE AREA(185.0, -0.5, 60) AND XMATCH(O, T, !P) < 3.5`)
	if err != nil {
		return nil, err
	}
	for _, row := range drop.Rows {
		t.Add("XMATCH(O,T,!P) < 3.5",
			fmt.Sprintf("{%sO, %sT}", row[0].AsString(), row[1].AsString()),
			"no matching P observation (P is a drop out)")
	}
	t.Notes = append(t.Notes,
		"paper: set {aO,aT,aP} selected by XMATCH(O,T,P); {bO,bT} selected by XMATCH(O,T,!P)")
	if len(all.Rows) != 1 || all.Rows[0][0].AsString() != "a" {
		t.Notes = append(t.Notes, "UNEXPECTED: mandatory selection deviates from the figure")
	}
	if len(drop.Rows) != 1 || drop.Rows[0][0].AsString() != "b" {
		t.Notes = append(t.Notes, "UNEXPECTED: drop-out selection deviates from the figure")
	}
	return t, nil
}

// figure2Federation hand-places the observations of Figure 2.
func figure2Federation() (*skyquery.Federation, error) {
	sigma := map[string]float64{"O": 0.10, "T": 0.15, "P": 0.20}
	// Body a: all three observations tightly clustered.
	// Body b: O and T agree, P is ~30 arcsec away (out of range).
	obs := map[string][][3]interface{}{
		"O": {{"a", 184.999, -0.499}, {"b", 185.001, -0.501}},
		"T": {{"a", 184.999 + skyquery.Arcsec(0.10), -0.499}, {"b", 185.001 - skyquery.Arcsec(0.12), -0.501}},
		"P": {{"a", 184.999, -0.499 + skyquery.Arcsec(0.15)}, {"b", 185.001, -0.501 + skyquery.Arcsec(30)}},
	}
	var nodes []skyquery.NodeSpec
	for _, name := range []string{"O", "T", "P"} {
		db := skyquery.NewDB()
		tab, err := db.Create("Obs", skyquery.Schema{
			{Name: "body", Type: value.StringType},
			{Name: "ra", Type: value.FloatType},
			{Name: "dec", Type: value.FloatType},
		})
		if err != nil {
			return nil, err
		}
		for _, o := range obs[name] {
			row, err := skyquery.Values(o[0], o[1], o[2])
			if err != nil {
				return nil, err
			}
			if err := tab.Append(row...); err != nil {
				return nil, err
			}
		}
		if err := tab.EnableSpatial(skyquery.SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
			return nil, err
		}
		nodes = append(nodes, skyquery.NodeSpec{
			Name: name, DB: db, PrimaryTable: "Obs",
			RACol: "ra", DecCol: "dec", SigmaArcsec: sigma[name],
		})
	}
	return skyquery.Launch(skyquery.Options{Nodes: nodes})
}

// F3ExecutionTrace reproduces Figure 3: the numbered execution steps of a
// cross-match query, captured from live trace events.
func F3ExecutionTrace() (*Table, error) {
	var mu sync.Mutex
	var trace []string
	fed, err := skyquery.Launch(skyquery.Options{
		Bodies: 1200,
		PortalEvents: func(kind, detail string) {
			mu.Lock()
			trace = append(trace, "portal  "+kind+"  "+detail)
			mu.Unlock()
		},
		NodeEvents: func(node, kind, detail string) {
			mu.Lock()
			trace = append(trace, node+"  "+kind+"  "+detail)
			mu.Unlock()
		},
	})
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	if _, err := fed.Query(context.Background(), paperQuery); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "F3",
		Title:  "Figure 3 — execution steps of a cross-match query",
		Header: []string{"#", "actor", "event", "detail"},
	}
	step := map[string]string{
		"submit":         "1-2",
		"decompose":      "2",
		"perfquery.send": "3",
		"perfquery.recv": "4",
		"plan":           "5",
		"execute":        "6",
		"xmatch.recv":    "6",
		"xmatch.forward": "6",
		"xmatch.seed":    "6",
		"xmatch.step":    "7",
		"xmatch.dropout": "7",
		"xmatch.return":  "7",
		"relay":          "8",
	}
	for _, line := range trace {
		parts := strings.SplitN(line, "  ", 3)
		for len(parts) < 3 {
			parts = append(parts, "")
		}
		t.Add(step[parts[1]], parts[0], parts[1], parts[2])
	}
	t.Notes = append(t.Notes,
		"steps follow Figure 3: submit -> async performance queries -> plan -> daisy chain -> relay")
	return t, nil
}
