// Package experiments regenerates every figure and quantified claim of
// the paper's evaluation (see DESIGN.md's per-experiment index and
// EXPERIMENTS.md for recorded results). Each experiment returns a Table;
// cmd/skyquery-bench prints them all, and the module-root benchmarks wrap
// the same workloads in testing.B form.
package experiments

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result: an identifier tying it to the paper
// artifact, column headers, rows, and free-form notes about the expected
// shape.
type Table struct {
	ID     string // e.g. "F2" or "C1"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Add appends a row, stringifying the cells.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case time.Duration:
			row[i] = v.Round(10 * time.Microsecond).String()
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		sb.WriteString(strings.TrimRight(strings.Join(parts, "  "), " "))
		sb.WriteByte('\n')
	}
	line(t.Header)
	seps := make([]string, len(t.Header))
	for i, w := range widths {
		seps[i] = strings.Repeat("-", w)
	}
	line(seps)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Experiment pairs an ID with its runner.
type Experiment struct {
	ID  string
	Run func() (*Table, error)
}

// All lists every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"F1", F1Federation},
		{"F2", F2XMatchSemantics},
		{"F3", F3ExecutionTrace},
		{"C1", C1PlanOrdering},
		{"C2", C2Chunking},
		{"C3", C3HTMRange},
		{"C4", C4SOAPOverhead},
		{"C5", C5ChainVsPull},
		{"C6", C6Scaling},
		{"C7", C7PerfQueries},
	}
}
