package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"skyquery"
)

func mathAsin(x float64) float64 { return math.Asin(x) }

// C5ChainVsPull compares the paper's daisy chain with the pull-to-portal
// architecture it rejects (§5.1), sweeping the match selectivity via a
// local flux predicate on the densest archive.
func C5ChainVsPull() (*Table, error) {
	fed, err := skyquery.Launch(skyquery.Options{Bodies: 3000})
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	t := &Table{
		ID:     "C5",
		Title:  "§5.1 daisy chain vs pull-to-portal (bytes shipped, wall time)",
		Header: []string{"selectivity", "matches", "chain bytes", "pull bytes", "pull/chain", "chain time", "pull time"},
	}
	for _, tc := range []struct {
		name string
		pred string
	}{
		{"high (no predicate)", ""},
		{"medium (flux > 15)", "O.flux > 15"},
		{"low (flux > 35)", "O.flux > 35"},
	} {
		sql := `SELECT O.object_id, T.object_id
			FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
			WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5`
		if tc.pred != "" {
			sql += " AND " + tc.pred
		}
		fed.Transport.Reset()
		start := time.Now()
		res, err := fed.Query(context.Background(), sql)
		if err != nil {
			return nil, err
		}
		chainTime := time.Since(start)
		chain := fed.Transport.Stats()

		fed.Transport.Reset()
		start = time.Now()
		pullRes, err := fed.PullQuery(context.Background(), sql)
		if err != nil {
			return nil, err
		}
		pullTime := time.Since(start)
		pull := fed.Transport.Stats()

		if res.NumRows() != pullRes.NumRows() {
			return nil, fmt.Errorf("C5: chain found %d, pull %d", res.NumRows(), pullRes.NumRows())
		}
		ratio := float64(pull.Total()) / float64(chain.Total())
		t.Add(tc.name, res.NumRows(), chain.Total(), pull.Total(),
			fmt.Sprintf("%.2fx", ratio), chainTime, pullTime)
	}
	t.Notes = append(t.Notes,
		"expected shape: the chain's advantage grows as selectivity drops — pull always ships every candidate row")
	return t, nil
}

// C6Scaling measures the N-step distributed evaluation of §5.4: archives
// N = 2..5 over the same field, and an AREA radius sweep at N = 3.
func C6Scaling() (*Table, error) {
	t := &Table{
		ID:     "C6",
		Title:  "§5.4 scaling with archive count N and AREA radius",
		Header: []string{"sweep", "value", "matches", "bytes on wire", "wall time"},
	}
	// Archive count sweep.
	for n := 2; n <= 5; n++ {
		var surveys []skyquery.SurveySpec
		aliases := ""
		from := ""
		for i := 0; i < n; i++ {
			name := fmt.Sprintf("S%d", i+1)
			surveys = append(surveys, skyquery.SurveySpec{
				Name:        name,
				SigmaArcsec: 0.1 + 0.1*float64(i),
				// Keep survivor counts meaningful as N grows.
				Completeness: 0.9,
				Seed:         int64(41 + i),
			})
			alias := fmt.Sprintf("a%d", i+1)
			if i > 0 {
				aliases += ", "
				from += ", "
			}
			aliases += alias
			from += fmt.Sprintf("%s:PhotoObject %s", name, alias)
		}
		fed, err := skyquery.Launch(skyquery.Options{Bodies: 1500, Surveys: surveys})
		if err != nil {
			return nil, err
		}
		sql := fmt.Sprintf(`SELECT a1.object_id FROM %s
			WHERE AREA(185.0, -0.5, 900) AND XMATCH(%s) < 3.5`, from, aliases)
		fed.Transport.Reset()
		start := time.Now()
		res, err := fed.Query(context.Background(), sql)
		if err != nil {
			fed.Close()
			return nil, err
		}
		elapsed := time.Since(start)
		stats := fed.Transport.Stats()
		t.Add("archives N", n, res.NumRows(), stats.Total(), elapsed)
		fed.Close()
	}

	// Radius sweep at N = 3 over a wider field.
	fed, err := skyquery.Launch(skyquery.Options{
		Bodies: 4000,
		Region: skyquery.NewCap(185, -0.5, 1.0),
	})
	if err != nil {
		return nil, err
	}
	defer fed.Close()
	for _, radiusArcsec := range []float64{225, 450, 900, 1800, 3600} {
		sql := fmt.Sprintf(`SELECT O.object_id
			FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
			WHERE AREA(185.0, -0.5, %g) AND XMATCH(O, T, P) < 3.5`, radiusArcsec)
		fed.Transport.Reset()
		start := time.Now()
		res, err := fed.Query(context.Background(), sql)
		if err != nil {
			return nil, err
		}
		elapsed := time.Since(start)
		stats := fed.Transport.Stats()
		t.Add("radius", formatRadius(radiusArcsec/3600), res.NumRows(), stats.Total(), elapsed)
	}
	t.Notes = append(t.Notes,
		"expected shape: bytes and time grow roughly with the survivor count (area for the radius sweep);",
		"adding archives multiplies chain steps but each step's survivors shrink with completeness^N")
	return t, nil
}

// C7PerfQueries measures §5.3's premise that performance queries are
// cheap relative to the cross match they optimize: "de-serialization of
// these messages is not an expensive operation as they are single
// integers".
func C7PerfQueries() (*Table, error) {
	fed, err := skyquery.Launch(skyquery.Options{Bodies: 3000, RecordCalls: true})
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	const reps = 3
	t := &Table{
		ID:     "C7",
		Title:  "§5.3 performance-query cost vs full cross match",
		Header: []string{"phase", "wall time (avg)", "bytes on wire", "notes"},
	}

	// Planning only (includes the async count-star fan-out).
	fed.Transport.Reset()
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := fed.BuildPlan(context.Background(), paperQuery); err != nil {
			return nil, err
		}
	}
	planTime := time.Since(start) / reps
	planStats := fed.Transport.Stats()
	perfBytes := planStats.Total() / reps

	// Largest single performance-query response.
	var maxResp int64
	for _, c := range fed.Transport.Calls() {
		if short(c.Action) == "Query" && c.BytesReceived > maxResp {
			maxResp = c.BytesReceived
		}
	}

	// Full query.
	fed.Transport.Reset()
	start = time.Now()
	for i := 0; i < reps; i++ {
		if _, err := fed.Query(context.Background(), paperQuery); err != nil {
			return nil, err
		}
	}
	fullTime := time.Since(start) / reps
	fullStats := fed.Transport.Stats()

	t.Add("plan (3 async count-star probes)", planTime, perfBytes,
		fmt.Sprintf("largest probe response: %d B (a single integer)", maxResp))
	t.Add("full cross match", fullTime, fullStats.Total()/reps,
		fmt.Sprintf("%.1f%% of bytes spent on probes", 100*float64(perfBytes)/float64(fullStats.Total()/reps)))
	t.Notes = append(t.Notes,
		"expected shape: probes cost a small fraction of the query they optimize, and their",
		"responses are tiny — the paper also credits them with warming the node caches")
	return t, nil
}
