package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:     "T0",
		Title:  "render test",
		Header: []string{"a", "metric", "v"},
	}
	tab.Add("x", 12, 3.14159)
	tab.Add("longer-cell", time.Millisecond*1500, "s")
	tab.Notes = append(tab.Notes, "a note")
	out := tab.String()
	for _, want := range []string{"== T0: render test ==", "longer-cell", "1.5s", "3.14", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Columns must be aligned: header and separator share prefix width.
	lines := strings.Split(out, "\n")
	if len(lines[1]) == 0 || len(lines[2]) < len("a  metric") {
		t.Errorf("alignment looks wrong:\n%s", out)
	}
}

func TestAllListsEveryExperiment(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if e.Run == nil {
			t.Errorf("%s has no runner", e.ID)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"F1", "F2", "F3", "C1", "C2", "C3", "C4", "C5", "C6", "C7"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}

// TestF2ReproducesFigure runs the cheapest experiment end to end and
// asserts the figure's exact selection (the note machinery flags any
// deviation with "UNEXPECTED").
func TestF2ReproducesFigure(t *testing.T) {
	tab, err := F2XMatchSemantics()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 2 {
		t.Fatalf("rows = %d, want 2 (one per clause)\n%s", len(tab.Rows), tab)
	}
	for _, n := range tab.Notes {
		if strings.Contains(n, "UNEXPECTED") {
			t.Errorf("figure deviation: %s", n)
		}
	}
	if !strings.Contains(tab.Rows[0][1], "aO") || !strings.Contains(tab.Rows[1][1], "bO") {
		t.Errorf("selections wrong:\n%s", tab)
	}
}

// TestF1Architecture exercises the registration + query accounting.
func TestF1Architecture(t *testing.T) {
	if testing.Short() {
		t.Skip("federation experiment")
	}
	tab, err := F1Federation()
	if err != nil {
		t.Fatal(err)
	}
	cells := map[string]string{}
	for _, row := range tab.Rows {
		cells[row[1]] = row[2]
	}
	if cells["Metadata call-backs"] != "3" || cells["Information call-backs"] != "3" {
		t.Errorf("handshake accounting wrong:\n%s", tab)
	}
	if cells["cross matches"] == "0" {
		t.Errorf("no matches:\n%s", tab)
	}
}

// TestC1OptimizerWins asserts the headline optimizer claim end to end.
func TestC1OptimizerWins(t *testing.T) {
	if testing.Short() {
		t.Skip("federation experiment")
	}
	tab, err := C1PlanOrdering()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	bytes := func(row []string) string { return row[3] }
	opt := atoi(t, bytes(tab.Rows[0]))
	worst := atoi(t, bytes(tab.Rows[1]))
	if opt >= worst {
		t.Errorf("optimizer (%d B) did not beat worst order (%d B)\n%s", opt, worst, tab)
	}
	// Matches identical across orders (§5.4 symmetry).
	if tab.Rows[0][2] != tab.Rows[1][2] || tab.Rows[0][2] != tab.Rows[2][2] {
		t.Errorf("match counts differ across orders:\n%s", tab)
	}
}

func atoi(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("not a number: %q", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}
