package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"time"

	"skyquery"
	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/value"
)

// skewedFederation builds archives with very different densities so the
// ordering decision matters.
func skewedFederation(bodies int) (*skyquery.Federation, error) {
	return skyquery.Launch(skyquery.Options{
		Bodies: bodies,
		Surveys: []skyquery.SurveySpec{
			{Name: "DEEP", SigmaArcsec: 0.1, Completeness: 0.98, Seed: 31},
			{Name: "MID", SigmaArcsec: 0.2, Completeness: 0.55, Seed: 32},
			{Name: "SPARSE", SigmaArcsec: 0.4, Completeness: 0.12, Seed: 33},
		},
	})
}

const skewedQuery = `
	SELECT d.object_id, m.object_id, s.object_id
	FROM DEEP:PhotoObject d, MID:PhotoObject m, SPARSE:PhotoObject s
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(d, m, s) < 3.5`

// runPlanDirect kicks off a prepared plan at its first step's node and
// drains the result, so experiments can execute arbitrary step orders.
func runPlanDirect(fed *skyquery.Federation, p *plan.Plan) (int, error) {
	c := &soap.Client{HTTPClient: fed.Transport.Client()}
	var first soap.ChunkedData
	if err := c.Call(context.Background(), p.Steps[0].Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *p}, &first); err != nil {
		return 0, err
	}
	ds, err := soap.FetchAll(context.Background(), c, p.Steps[0].Endpoint, &first)
	if err != nil {
		return 0, err
	}
	return ds.NumRows(), nil
}

// C1PlanOrdering measures the §5.3 claim that visiting archives in
// decreasing count-star order reduces transmission cost, against the
// worst (increasing) and a fixed arbitrary order.
func C1PlanOrdering() (*Table, error) {
	fed, err := skewedFederation(4000)
	if err != nil {
		return nil, err
	}
	defer fed.Close()

	base, err := fed.BuildPlan(context.Background(), skewedQuery)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "C1",
		Title:  "§5.3 count-star ordering vs other chain orders (bytes shipped)",
		Header: []string{"order", "chain (call order)", "matches", "bytes on wire", "requests"},
	}
	orders := []struct {
		name    string
		permute func([]plan.Step) []plan.Step
	}{
		{"count-star (optimizer)", func(s []plan.Step) []plan.Step { return s }},
		{"worst (increasing count)", reverseSteps},
		{"arbitrary (rotated)", rotateSteps},
	}
	for _, o := range orders {
		p := *base
		p.Steps = o.permute(append([]plan.Step(nil), base.Steps...))
		fed.Transport.Reset()
		matches, err := runPlanDirect(fed, &p)
		if err != nil {
			return nil, err
		}
		stats := fed.Transport.Stats()
		t.Add(o.name, p.String(), matches, stats.Total(), stats.Requests)
	}
	t.Notes = append(t.Notes,
		"expected shape: the optimizer's order ships the fewest bytes; the gap grows with archive skew")
	return t, nil
}

func reverseSteps(s []plan.Step) []plan.Step {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
	return s
}

// rotateSteps moves the first step to the end: an order that is neither
// the optimizer's choice nor the worst case.
func rotateSteps(s []plan.Step) []plan.Step {
	if len(s) < 2 {
		return s
	}
	return append(s[1:], s[0])
}

// C2Chunking reproduces the §6 experience: the XML parser dies at ~10 MB
// unless large results are chunked. A result set larger than the message
// limit is served monolithically (fails) and at several chunk sizes
// (succeeds), measuring throughput.
func C2Chunking() (*Table, error) {
	const limit = 2 << 20 // a scaled-down "10 MB parser"
	const rows = 60000    // ~4.5 MB of XML

	ds := dataset.New(
		dataset.Column{Name: "object_id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
		dataset.Column{Name: "dec", Type: value.FloatType},
	)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < rows; i++ {
		ds.Append([]value.Value{
			value.Int(int64(i)), value.Float(rng.Float64() * 360), value.Float(rng.Float64()*180 - 90),
		})
	}
	totalXML := ds.XMLSize()

	var cs soap.ChunkStore
	srv := soap.NewServer()
	srv.MessageLimit = limit
	chunkRows := 0 // set per call below via closure variable
	srv.Handle("urn:exp:Big", func(r *soap.Request) (interface{}, error) {
		return cs.Respond(ds, chunkRows), nil
	})
	srv.Handle(soap.FetchAction, cs.FetchHandler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv}
	go httpSrv.Serve(ln)
	defer httpSrv.Close()
	url := "http://" + ln.Addr().String()

	t := &Table{
		ID:     "C2",
		Title:  fmt.Sprintf("§6 chunking workaround (result: %d rows, %d B of XML; parser limit %d B)", rows, totalXML, limit),
		Header: []string{"strategy", "messages", "outcome", "rows delivered", "time"},
	}
	c := &soap.Client{MessageLimit: limit}
	for _, cr := range []int{0, 40000, 20000, 5000, 1000} {
		chunkRows = cr
		name := fmt.Sprintf("chunks of %d rows", cr)
		if cr == 0 {
			name = "monolithic (no chunking)"
		}
		start := time.Now()
		var first soap.ChunkedData
		err := c.Call(context.Background(), url, "urn:exp:Big", &soap.FetchRequest{}, &first)
		if err != nil {
			var tooBig *soap.ErrMessageTooLarge
			var fault *soap.Fault
			if errors.As(err, &tooBig) || (errors.As(err, &fault) && fault.Detail == "MessageTooLarge") {
				t.Add(name, 1, "FAILS: parser limit exceeded", 0, time.Since(start))
				continue
			}
			return nil, err
		}
		got, err := soap.FetchAll(context.Background(), c, url, &first)
		if err != nil {
			var tooBig *soap.ErrMessageTooLarge
			if errors.As(err, &tooBig) {
				t.Add(name, 1, "FAILS: parser limit exceeded", 0, time.Since(start))
				continue
			}
			return nil, err
		}
		messages := (rows + cr - 1) / cr
		t.Add(name, messages, "ok", got.NumRows(), time.Since(start))
	}
	t.Notes = append(t.Notes,
		"expected shape: monolithic transfer dies at the parser limit (the paper's ~10 MB failure);",
		"chunked transfers always succeed, with small chunks paying more per-message overhead")
	return t, nil
}

// C3HTMRange measures §5.4's premise that the HTM index makes range
// searches efficient, against a full table scan, across radii.
func C3HTMRange() (*Table, error) {
	const n = 200000
	tab, err := storage.NewTable("PhotoObject", storage.Schema{
		{Name: "id", Type: value.IntType},
		{Name: "ra", Type: value.FloatType},
		{Name: "dec", Type: value.FloatType},
	})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < n; i++ {
		// Uniform on the sphere.
		z := 2*rng.Float64() - 1
		ra := rng.Float64() * 360
		dec := sphere.DegPerRad * asin(z)
		if err := tab.Append(value.Int(int64(i)), value.Float(ra), value.Float(dec)); err != nil {
			return nil, err
		}
	}
	if err := tab.EnableSpatial(storage.SpatialConfig{RACol: "ra", DecCol: "dec"}); err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "C3",
		Title:  fmt.Sprintf("§5.4 HTM range search vs full scan (%d objects uniform on the sphere)", n),
		Header: []string{"radius", "rows in range", "HTM time", "scan time", "speedup"},
	}
	for _, radius := range []float64{sphere.Arcsec(10), sphere.Arcsec(60), 0.1, 1, 10, 45} {
		c := sphere.NewCap(180, 0, radius)
		// HTM search.
		startHTM := time.Now()
		reps := 5
		var htmRows int
		for r := 0; r < reps; r++ {
			htmRows = 0
			tab.SearchCap(c, func(int) bool { htmRows++; return true })
		}
		htmTime := time.Since(startHTM) / time.Duration(reps)
		// Full scan.
		startScan := time.Now()
		var scanRows int
		for r := 0; r < reps; r++ {
			scanRows = 0
			tab.Scan(func(row int) bool {
				ra, _ := tab.Value(row, 1).AsFloat()
				dec, _ := tab.Value(row, 2).AsFloat()
				if c.Contains(sphere.FromRaDec(ra, dec)) {
					scanRows++
				}
				return true
			})
		}
		scanTime := time.Since(startScan) / time.Duration(reps)
		if htmRows != scanRows {
			return nil, fmt.Errorf("C3: HTM found %d rows, scan %d", htmRows, scanRows)
		}
		speedup := float64(scanTime) / float64(htmTime)
		t.Add(formatRadius(radius), htmRows, htmTime, scanTime, fmt.Sprintf("%.1fx", speedup))
	}
	t.Notes = append(t.Notes,
		"expected shape: orders of magnitude at arcsecond radii, converging to ~1x as the cap covers the sky")
	return t, nil
}

func asin(x float64) float64 {
	// Clamp for safety at the poles.
	if x > 1 {
		x = 1
	}
	if x < -1 {
		x = -1
	}
	return mathAsin(x)
}

func formatRadius(deg float64) string {
	as := sphere.ToArcsec(deg)
	switch {
	case as < 120:
		return fmt.Sprintf("%.0f\"", as)
	case deg < 2:
		return fmt.Sprintf("%.0f'", as/60)
	default:
		return fmt.Sprintf("%.0f deg", deg)
	}
}

// C4SOAPOverhead quantifies §6's observation that SOAP/XML serialization
// is the cost of web services, against a binary (gob) baseline.
func C4SOAPOverhead() (*Table, error) {
	const rows = 10000
	ds := dataset.New(
		dataset.Column{Name: "object_id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
		dataset.Column{Name: "dec", Type: value.FloatType},
		dataset.Column{Name: "flux", Type: value.FloatType},
		dataset.Column{Name: "type", Type: value.StringType},
	)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < rows; i++ {
		typ := "STAR"
		if i%3 == 0 {
			typ = "GALAXY"
		}
		ds.Append([]value.Value{
			value.Int(int64(i)), value.Float(rng.Float64() * 360),
			value.Float(rng.Float64()*180 - 90), value.Float(rng.Float64() * 30),
			value.String(typ),
		})
	}

	t := &Table{
		ID:     "C4",
		Title:  fmt.Sprintf("§6 SOAP/XML serialization overhead vs binary (%d-row result set)", rows),
		Header: []string{"encoding", "bytes", "encode", "decode", "size vs binary"},
	}
	const reps = 10
	measure := func(enc func() ([]byte, error), dec func([]byte) error) (int, time.Duration, time.Duration, error) {
		var data []byte
		var err error
		start := time.Now()
		for i := 0; i < reps; i++ {
			data, err = enc()
			if err != nil {
				return 0, 0, 0, err
			}
		}
		encTime := time.Since(start) / reps
		start = time.Now()
		for i := 0; i < reps; i++ {
			if err := dec(data); err != nil {
				return 0, 0, 0, err
			}
		}
		decTime := time.Since(start) / reps
		return len(data), encTime, decTime, nil
	}

	xmlBytes, xmlEnc, xmlDec, err := measure(
		func() ([]byte, error) {
			var buf bytes.Buffer
			err := ds.EncodeXML(&buf)
			return buf.Bytes(), err
		},
		func(data []byte) error {
			_, err := dataset.DecodeXML(bytes.NewReader(data))
			return err
		})
	if err != nil {
		return nil, err
	}
	binBytes, binEnc, binDec, err := measure(
		func() ([]byte, error) {
			var buf bytes.Buffer
			err := ds.EncodeBinary(&buf)
			return buf.Bytes(), err
		},
		func(data []byte) error {
			_, err := dataset.DecodeBinary(bytes.NewReader(data))
			return err
		})
	if err != nil {
		return nil, err
	}
	t.Add("SOAP/XML (DataSet)", xmlBytes, xmlEnc, xmlDec, fmt.Sprintf("%.1fx", float64(xmlBytes)/float64(binBytes)))
	t.Add("binary (gob, CORBA-style)", binBytes, binEnc, binDec, "1.0x")
	t.Notes = append(t.Notes,
		"expected shape: XML is several times larger and slower — the price the paper accepts for interoperability")
	return t, nil
}
