package htm

import (
	"math"
	"math/rand"
	"testing"

	"skyquery/internal/sphere"
)

func randUnit(rng *rand.Rand) sphere.Vec {
	for {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		s := x*x + y*y
		if s >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return sphere.Vec{X: x * f, Y: y * f, Z: 1 - 2*s}
	}
}

func TestRootTrianglesCoverSphere(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5000; i++ {
		v := randUnit(rng)
		n := 0
		for r := 0; r < 8; r++ {
			if rootTriangle(r).Contains(v) {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("point %v in no root triangle", v)
		}
	}
}

func TestRootTrianglesOrientation(t *testing.T) {
	// Every root triangle must contain its own centroid (CCW orientation).
	for r := 0; r < 8; r++ {
		tri := rootTriangle(r)
		if !tri.Contains(tri.Center()) {
			t.Errorf("root %d does not contain its centroid; orientation wrong", r)
		}
	}
}

func TestChildrenPartitionParent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tri := rootTriangle(0)
	for i := 0; i < 2000; i++ {
		// Sample points inside the parent by rejection.
		v := randUnit(rng)
		if !tri.Contains(v) {
			continue
		}
		n := 0
		for k := 0; k < 4; k++ {
			if tri.child(k).Contains(v) {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("point %v in parent but no child", v)
		}
	}
}

func TestLookupInsideReturnedTrixel(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, level := range []int{0, 1, 3, 8, 14, 20} {
		for i := 0; i < 300; i++ {
			v := randUnit(rng)
			id := Lookup(v, level)
			if got := id.Level(); got != level {
				t.Fatalf("Lookup level = %d, want %d", got, level)
			}
			if !id.Triangle().Contains(v) {
				t.Fatalf("level %d: %v not inside trixel %v", level, v, id)
			}
		}
	}
}

func TestLookupPrefixProperty(t *testing.T) {
	// The level-L lookup of a point must be a descendant of its level-l
	// lookup for l < L.
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		v := randUnit(rng)
		deep := Lookup(v, 12)
		shallow := Lookup(v, 5)
		if deep>>uint(2*(12-5)) != shallow {
			t.Fatalf("prefix property violated: deep=%v shallow=%v", deep, shallow)
		}
	}
}

func TestIDLevelParentChild(t *testing.T) {
	id := ID(8)
	if id.Level() != 0 {
		t.Errorf("root level = %d", id.Level())
	}
	c := id.Child(2)
	if c != ID(8<<2|2) {
		t.Errorf("Child = %v", c)
	}
	if c.Level() != 1 {
		t.Errorf("child level = %d", c.Level())
	}
	if c.Parent() != id {
		t.Errorf("Parent = %v", c.Parent())
	}
	if id.Parent() != id {
		t.Errorf("root Parent should be itself")
	}
	if ID(0).Level() != -1 || ID(7).Level() != -1 {
		t.Error("IDs below 8 must be invalid")
	}
	if ID(16).Level() != -1 {
		t.Error("ID 16 has an odd bit length and must be invalid")
	}
	if !ID(15).Valid() || ID(3).Valid() {
		t.Error("Valid() wrong")
	}
}

func TestAtLevel(t *testing.T) {
	id := ID(9)
	r := id.AtLevel(2)
	if r.Lo != 9<<4 || r.Hi != 10<<4-1 {
		t.Errorf("AtLevel(2) = %+v", r)
	}
	if r.Count() != 16 {
		t.Errorf("Count = %d, want 16", r.Count())
	}
	same := id.AtLevel(0)
	if same.Lo != id || same.Hi != id {
		t.Errorf("AtLevel(same) = %+v", same)
	}
}

func TestIDString(t *testing.T) {
	if got := ID(8).String(); got != "S0" {
		t.Errorf("ID(8).String() = %q", got)
	}
	if got := ID(15).String(); got != "N3" {
		t.Errorf("ID(15).String() = %q", got)
	}
	if got := ID(8).Child(3).Child(1).String(); got != "S031" {
		t.Errorf("S0.3.1 String = %q", got)
	}
	if got := ID(5).String(); got == "" {
		t.Error("invalid ID should still render")
	}
}

func TestTriangleRoundTripThroughID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		v := randUnit(rng)
		id := Lookup(v, 9)
		tri := id.Triangle()
		if !tri.Contains(v) {
			t.Fatalf("Triangle() of Lookup() does not contain the point")
		}
		// Looking up the triangle centroid at the same level must return
		// the same ID.
		if got := Lookup(tri.Center(), 9); got != id {
			t.Fatalf("Lookup(center) = %v, want %v", got, id)
		}
	}
}

func TestCoverEach(t *testing.T) {
	c := sphere.NewCap(185, -0.5, 0.25)
	cov := CoverCap(c, LevelForRadius(0.25), 14)
	if len(cov.Inner) == 0 || len(cov.Partial) == 0 {
		t.Fatalf("degenerate cover: %d inner, %d partial", len(cov.Inner), len(cov.Partial))
	}
	var rs []Range
	var tests []bool
	cov.Each(func(r Range, needTest bool) bool {
		rs = append(rs, r)
		tests = append(tests, needTest)
		return true
	})
	if len(rs) != len(cov.Inner)+len(cov.Partial) {
		t.Fatalf("Each yielded %d ranges, want %d", len(rs), len(cov.Inner)+len(cov.Partial))
	}
	// Canonical trixel order: ascending by Lo across the inner/partial
	// interleave, each range tagged with its classification.
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo <= rs[i-1].Lo {
			t.Fatalf("range %d = %v not in ascending trixel order after %v", i, rs[i], rs[i-1])
		}
	}
	seen := map[Range]bool{}
	for i, r := range rs {
		seen[r] = true
		want := false
		for _, p := range cov.Partial {
			if p == r {
				want = true
			}
		}
		if tests[i] != want {
			t.Fatalf("range %d = %v tagged needTest=%v, want %v", i, rs[i], tests[i], want)
		}
	}
	for _, r := range append(append([]Range(nil), cov.Inner...), cov.Partial...) {
		if !seen[r] {
			t.Fatalf("range %v missing from enumeration", r)
		}
	}
	// Early stop.
	n := 0
	cov.Each(func(Range, bool) bool { n++; return false })
	if n != 1 {
		t.Fatalf("Each continued after false: %d calls", n)
	}
}

func TestMergeRanges(t *testing.T) {
	in := []Range{{10, 12}, {13, 15}, {1, 2}, {11, 14}, {20, 22}}
	out := MergeRanges(in)
	want := []Range{{1, 2}, {10, 15}, {20, 22}}
	if len(out) != len(want) {
		t.Fatalf("MergeRanges = %+v, want %+v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MergeRanges[%d] = %+v, want %+v", i, out[i], want[i])
		}
	}
	if got := MergeRanges(nil); len(got) != 0 {
		t.Errorf("MergeRanges(nil) = %v", got)
	}
	single := MergeRanges([]Range{{5, 6}})
	if len(single) != 1 || single[0] != (Range{5, 6}) {
		t.Errorf("MergeRanges single = %v", single)
	}
}

// coverOracle checks a cover against brute-force point classification.
func coverOracle(t *testing.T, c sphere.Cap, cov Cover, nPoints int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	contains := func(rs []Range, id ID) bool {
		for _, r := range rs {
			if r.Contains(id) {
				return true
			}
		}
		return false
	}
	for i := 0; i < nPoints; i++ {
		// Mix uniform sphere points and points near the cap boundary,
		// where cover classification mistakes would hide.
		var v sphere.Vec
		if i%2 == 0 {
			v = randUnit(rng)
		} else {
			spread := math.Sin((c.Radius*2 + 0.001) * sphere.RadPerDeg * rng.Float64())
			v = c.Center.Add(randUnit(rng).Scale(spread)).Normalize()
		}
		id := Lookup(v, cov.Level)
		inInner := contains(cov.Inner, id)
		inPartial := contains(cov.Partial, id)
		if c.Contains(v) && !inInner && !inPartial {
			t.Fatalf("point %v inside cap missed by cover (id %v)", v, id)
		}
		if inInner && !c.Contains(v) {
			t.Fatalf("point %v in inner range but outside cap", v)
		}
	}
}

func TestCoverCapSmall(t *testing.T) {
	c := sphere.NewCap(185.0, -0.5, sphere.Arcsec(4.5))
	cov := CoverCap(c, LevelForRadius(c.Radius), 20)
	if len(cov.Inner)+len(cov.Partial) == 0 {
		t.Fatal("empty cover")
	}
	coverOracle(t, c, cov, 3000, 10)
}

func TestCoverCapMedium(t *testing.T) {
	c := sphere.NewCap(40, 30, 2.5)
	cov := CoverCap(c, LevelForRadius(c.Radius), 14)
	coverOracle(t, c, cov, 3000, 11)
}

func TestCoverCapLarge(t *testing.T) {
	c := sphere.NewCap(200, -45, 60)
	cov := CoverCap(c, 6, 10)
	if len(cov.Inner) == 0 {
		t.Error("a 60 degree cap must have inner trixels")
	}
	coverOracle(t, c, cov, 3000, 12)
}

func TestCoverCapOverHalfSphere(t *testing.T) {
	c := sphere.NewCap(0, 0, 120)
	cov := CoverCap(c, 5, 8)
	coverOracle(t, c, cov, 3000, 13)
}

func TestCoverCapPole(t *testing.T) {
	c := sphere.NewCap(123, 90, 1)
	cov := CoverCap(c, LevelForRadius(c.Radius), 14)
	coverOracle(t, c, cov, 3000, 14)
}

func TestCoverFullSphere(t *testing.T) {
	c := sphere.NewCap(0, 0, 180)
	cov := CoverCap(c, 3, 6)
	rs := cov.Ranges()
	var total uint64
	for _, r := range rs {
		total += r.Count()
	}
	// 8 * 4^6 leaf trixels in total.
	if want := uint64(8 * 1 << (2 * 6)); total != want {
		t.Errorf("full sphere cover has %d leaves, want %d", total, want)
	}
}

func TestCoverRangesMerged(t *testing.T) {
	c := sphere.NewCap(10, 10, 5)
	cov := CoverCap(c, 8, 12)
	rs := cov.Ranges()
	for i := 1; i < len(rs); i++ {
		if rs[i].Lo <= rs[i-1].Hi+1 {
			t.Fatalf("ranges %d and %d not merged: %+v %+v", i-1, i, rs[i-1], rs[i])
		}
	}
}

func TestCoverInnerSubsetOfCap(t *testing.T) {
	// Sample the centers of some inner leaf trixels; all must be in the cap.
	c := sphere.NewCap(75, -20, 4)
	cov := CoverCap(c, 9, 12)
	for _, r := range cov.Inner {
		for _, id := range []ID{r.Lo, r.Hi, (r.Lo + r.Hi) / 2} {
			if id.Level() != cov.Level {
				continue // midpoint may not be a valid ID at level; skip
			}
			if !c.Contains(id.Triangle().Center()) {
				t.Fatalf("inner trixel %v center outside cap", id)
			}
		}
	}
}

func TestLevelForRadius(t *testing.T) {
	small := LevelForRadius(sphere.Arcsec(4.5))
	big := LevelForRadius(30)
	if small <= big {
		t.Errorf("smaller radius should give deeper level: %d vs %d", small, big)
	}
	if small > MaxLevel || big < 0 {
		t.Errorf("levels out of range: %d %d", small, big)
	}
	if got := LevelForRadius(0); got != MaxLevel {
		t.Errorf("LevelForRadius(0) = %d, want MaxLevel", got)
	}
}

func TestDistToArc(t *testing.T) {
	a := sphere.FromRaDec(0, 0)
	b := sphere.FromRaDec(10, 0)
	// Point above the middle of the arc.
	p := sphere.FromRaDec(5, 3)
	if d := distToArc(p, a, b); !almostEq(d, 3, 1e-9) {
		t.Errorf("distToArc mid = %v, want 3", d)
	}
	// Point beyond an endpoint: distance to the endpoint.
	q := sphere.FromRaDec(-4, 0)
	if d := distToArc(q, a, b); !almostEq(d, 4, 1e-9) {
		t.Errorf("distToArc beyond end = %v, want 4", d)
	}
	// Pole of the great circle.
	pole := sphere.FromRaDec(0, 90)
	if d := distToArc(pole, a, b); !almostEq(d, 90, 1e-9) {
		t.Errorf("distToArc pole = %v, want 90", d)
	}
}

func almostEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestTrixelSize(t *testing.T) {
	if TrixelSize(0) != 90 {
		t.Errorf("TrixelSize(0) = %v", TrixelSize(0))
	}
	if TrixelSize(1) != 45 {
		t.Errorf("TrixelSize(1) = %v", TrixelSize(1))
	}
}
