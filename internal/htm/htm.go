// Package htm implements the Hierarchical Triangular Mesh, the spatial
// index the paper's SkyNodes use for range searches (§5.4): a quad tree on
// the sky whose nodes are spherical triangles ("trixels").
//
// The sphere is split into 8 root trixels (4 per hemisphere). Each trixel
// splits into 4 children by joining the normalized midpoints of its edges.
// A trixel at level L is named by a 64-bit ID: roots are 8..15 and each
// descent appends two bits, so the ID of a child is parent<<2 | k. IDs of
// all descendants of a trixel form one contiguous range, which is what
// makes the index useful: a sky region "covers" to a short list of ID
// ranges, and objects stored sorted by leaf-level ID are fetched with a few
// range scans.
//
// To retrieve objects in a circular range the paper's recipe is followed
// exactly: trixels entirely inside the circle contribute all their objects,
// trixels that merely intersect contribute candidates that are then tested
// individually.
package htm

import (
	"fmt"
	"math"
	"sort"

	"skyquery/internal/sphere"
)

// ID names a trixel. The root trixels are 8..15; a child ID is
// parent<<2|k for k in 0..3. The zero ID is invalid.
type ID uint64

// MaxLevel is the deepest supported subdivision. At level 24 a trixel is
// about 0.01 arc seconds across, far below survey astrometric error, and
// the ID still fits comfortably in 52 bits.
const MaxLevel = 24

// LevelRange returns the inclusive range of all valid trixel IDs at a
// level: the full-sky ID universe a sharded archive's trixel ranges must
// tile. Root trixels are 8..15, and each level appends two bits.
func LevelRange(level int) Range {
	return Range{Lo: ID(8) << (2 * uint(level)), Hi: ID(16)<<(2*uint(level)) - 1}
}

// rootVertices are the 6 octahedron corners the standard HTM starts from.
var rootVertices = [6]sphere.Vec{
	{X: 0, Y: 0, Z: 1},  // v0: north pole
	{X: 1, Y: 0, Z: 0},  // v1
	{X: 0, Y: 1, Z: 0},  // v2
	{X: -1, Y: 0, Z: 0}, // v3
	{X: 0, Y: -1, Z: 0}, // v4
	{X: 0, Y: 0, Z: -1}, // v5: south pole
}

// roots lists the vertex indices of the 8 root trixels S0..S3, N0..N3 in
// ID order (8..15), matching the published HTM layout.
var roots = [8][3]int{
	{1, 5, 2}, // S0 = 8
	{2, 5, 3}, // S1 = 9
	{3, 5, 4}, // S2 = 10
	{4, 5, 1}, // S3 = 11
	{1, 0, 4}, // N0 = 12
	{4, 0, 3}, // N1 = 13
	{3, 0, 2}, // N2 = 14
	{2, 0, 1}, // N3 = 15
}

// Triangle is the geometry of a trixel: three unit vectors in
// counter-clockwise order seen from outside the sphere.
type Triangle [3]sphere.Vec

// rootTriangle returns the geometry of root trixel i (0..7).
func rootTriangle(i int) Triangle {
	r := roots[i]
	return Triangle{rootVertices[r[0]], rootVertices[r[1]], rootVertices[r[2]]}
}

// child returns the k-th child of t (k in 0..3).
func (t Triangle) child(k int) Triangle {
	w0 := t[1].Add(t[2]).Normalize()
	w1 := t[0].Add(t[2]).Normalize()
	w2 := t[0].Add(t[1]).Normalize()
	switch k {
	case 0:
		return Triangle{t[0], w2, w1}
	case 1:
		return Triangle{t[1], w0, w2}
	case 2:
		return Triangle{t[2], w1, w0}
	default:
		return Triangle{w0, w1, w2}
	}
}

// containsEps is the tolerance for point-in-triangle sign tests. Boundary
// points may fall in either adjacent trixel; what matters is that they fall
// in at least one, so the test is made slightly generous.
const containsEps = 1e-14

// Contains reports whether the unit vector v is inside the triangle.
func (t Triangle) Contains(v sphere.Vec) bool {
	return t[0].Cross(t[1]).Dot(v) >= -containsEps &&
		t[1].Cross(t[2]).Dot(v) >= -containsEps &&
		t[2].Cross(t[0]).Dot(v) >= -containsEps
}

// Center returns the normalized centroid of the triangle.
func (t Triangle) Center() sphere.Vec {
	return t[0].Add(t[1]).Add(t[2]).Normalize()
}

// Level returns the subdivision level of id: 0 for roots, increasing by
// one per descent. It returns -1 for invalid IDs.
func (id ID) Level() int {
	if id < 8 {
		return -1
	}
	bits := 64 - leadingZeros(uint64(id))
	if (bits-4)%2 != 0 {
		return -1
	}
	return (bits - 4) / 2
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Valid reports whether id names a trixel.
func (id ID) Valid() bool { return id.Level() >= 0 && id.Level() <= MaxLevel }

// Parent returns the parent trixel of id. Roots return themselves.
func (id ID) Parent() ID {
	if id.Level() <= 0 {
		return id
	}
	return id >> 2
}

// Child returns the k-th child (0..3) of id.
func (id ID) Child(k int) ID { return id<<2 | ID(k&3) }

// AtLevel returns the ID range (inclusive) of all descendants of id at the
// given deeper level. If level equals id's level the range is {id, id}.
func (id ID) AtLevel(level int) Range {
	shift := uint(2 * (level - id.Level()))
	return Range{Lo: id << shift, Hi: (id+1)<<shift - 1}
}

// Triangle returns the geometry of the trixel named by id.
func (id ID) Triangle() Triangle {
	level := id.Level()
	if level < 0 {
		return Triangle{}
	}
	// Extract the path: top 4 bits are 8+root, then 2 bits per level.
	t := rootTriangle(int(id>>(2*uint(level))) - 8)
	for i := level - 1; i >= 0; i-- {
		k := int(id>>(2*uint(i))) & 3
		t = t.child(k)
	}
	return t
}

// String implements fmt.Stringer using the conventional N/S path notation.
func (id ID) String() string {
	level := id.Level()
	if level < 0 {
		return fmt.Sprintf("htm.ID(invalid %d)", uint64(id))
	}
	names := [8]string{"S0", "S1", "S2", "S3", "N0", "N1", "N2", "N3"}
	s := names[int(id>>(2*uint(level)))-8]
	for i := level - 1; i >= 0; i-- {
		s += fmt.Sprintf("%d", int(id>>(2*uint(i)))&3)
	}
	return s
}

// Lookup returns the ID of the trixel at the given level containing the
// unit vector v.
func Lookup(v sphere.Vec, level int) ID {
	if level < 0 {
		level = 0
	}
	if level > MaxLevel {
		level = MaxLevel
	}
	ri := -1
	for i := 0; i < 8; i++ {
		if rootTriangle(i).Contains(v) {
			ri = i
			break
		}
	}
	if ri < 0 {
		// Cannot happen for a genuine unit vector, but be safe for
		// degenerate input.
		ri = 0
	}
	id := ID(8 + ri)
	t := rootTriangle(ri)
	for l := 0; l < level; l++ {
		found := false
		for k := 0; k < 4; k++ {
			c := t.child(k)
			if c.Contains(v) {
				id = id.Child(k)
				t = c
				found = true
				break
			}
		}
		if !found {
			// Numerical corner case on a shared edge: fall into the
			// middle child, which borders all others.
			id = id.Child(3)
			t = t.child(3)
		}
	}
	return id
}

// Range is an inclusive range of trixel IDs at a common level.
type Range struct {
	Lo, Hi ID
}

// Contains reports whether id falls within the range.
func (r Range) Contains(id ID) bool { return id >= r.Lo && id <= r.Hi }

// Count returns the number of IDs in the range.
func (r Range) Count() uint64 { return uint64(r.Hi-r.Lo) + 1 }

// Cover is the result of covering a region: Inner ranges are entirely
// inside the region (objects there need no further test), Partial ranges
// merely intersect it (objects there must be tested individually). All
// ranges are expressed at leaf Level.
type Cover struct {
	Level   int
	Inner   []Range
	Partial []Range
}

// Each enumerates the cover's ranges in canonical trixel order — inner
// and partial ranges interleaved by ascending ID, each tagged with
// whether its objects still need an individual containment test — until
// fn returns false. It is the block-aligned enumeration protocol behind
// the storage layer's spatial searches: a consumer drains each contiguous
// ID range as one index scan instead of re-deriving the inner/partial
// split. The global ascending order is load-bearing for the sharded
// federation: a shard holding trixels [lo,hi] emits exactly the slice of
// this enumeration that falls in its range, so concatenating shard
// outputs in range order reproduces the single-node order at any shard
// count.
func (c Cover) Each(fn func(r Range, needTest bool) bool) {
	i, p := 0, 0
	for i < len(c.Inner) || p < len(c.Partial) {
		takeInner := p >= len(c.Partial) ||
			(i < len(c.Inner) && c.Inner[i].Lo <= c.Partial[p].Lo)
		if takeInner {
			if !fn(c.Inner[i], false) {
				return
			}
			i++
		} else {
			if !fn(c.Partial[p], true) {
				return
			}
			p++
		}
	}
}

// Ranges returns the union of inner and partial ranges, merged and sorted.
// This is the set of index scans needed to enumerate all candidates.
func (c Cover) Ranges() []Range {
	all := make([]Range, 0, len(c.Inner)+len(c.Partial))
	all = append(all, c.Inner...)
	all = append(all, c.Partial...)
	return MergeRanges(all)
}

// MergeRanges sorts ranges and merges overlapping or adjacent ones.
func MergeRanges(rs []Range) []Range {
	if len(rs) <= 1 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
			continue
		}
		out = append(out, r)
	}
	return out
}

// CoverCap computes the trixels covering a spherical cap, descending at
// most to subdivideLevel and reporting ranges at leafLevel (the level at
// which objects are indexed). subdivideLevel must be <= leafLevel.
//
// The classification follows the paper: a trixel whose vertices all lie in
// the cap is inner; a trixel that intersects the cap boundary is split
// until subdivideLevel and then reported as partial; disjoint trixels are
// dropped.
func CoverCap(c sphere.Cap, subdivideLevel, leafLevel int) Cover {
	if leafLevel > MaxLevel {
		leafLevel = MaxLevel
	}
	if subdivideLevel > leafLevel {
		subdivideLevel = leafLevel
	}
	if subdivideLevel < 0 {
		subdivideLevel = 0
	}
	cov := Cover{Level: leafLevel}
	for i := 0; i < 8; i++ {
		coverRecurse(ID(8+i), rootTriangle(i), c, subdivideLevel, leafLevel, &cov)
	}
	cov.Inner = MergeRanges(cov.Inner)
	cov.Partial = MergeRanges(cov.Partial)
	return cov
}

func coverRecurse(id ID, t Triangle, c sphere.Cap, subdivideLevel, leafLevel int, cov *Cover) {
	switch classify(t, c) {
	case disjoint:
		return
	case inside:
		cov.Inner = append(cov.Inner, id.AtLevel(leafLevel))
	case partial:
		if id.Level() >= subdivideLevel {
			cov.Partial = append(cov.Partial, id.AtLevel(leafLevel))
			return
		}
		for k := 0; k < 4; k++ {
			coverRecurse(id.Child(k), t.child(k), c, subdivideLevel, leafLevel, cov)
		}
	}
}

type classification int

const (
	disjoint classification = iota
	partial
	inside
)

// classify determines the relation of a trixel to a cap.
func classify(t Triangle, c sphere.Cap) classification {
	in := 0
	for _, v := range t {
		if c.Contains(v) {
			in++
		}
	}
	if in == 3 {
		if c.Radius <= 90 {
			// A cap of radius <= 90° is geodesically convex, so a
			// triangle with all vertices inside lies entirely inside.
			return inside
		}
		// Larger caps are not convex; the triangle may poke out the far
		// side. Treat conservatively as partial: candidates are
		// re-tested individually anyway.
		if !capBoundaryNearTriangle(t, c) {
			return inside
		}
		return partial
	}
	if in > 0 {
		return partial
	}
	// No vertex inside. The cap may still poke through an edge or sit
	// entirely within the triangle.
	if t.Contains(c.Center) {
		return partial
	}
	if capBoundaryNearTriangle(t, c) {
		return partial
	}
	return disjoint
}

// capBoundaryNearTriangle reports whether the cap boundary circle comes
// within the triangle's edges, i.e. whether the angular distance from the
// cap center to any edge segment is at most the cap radius.
func capBoundaryNearTriangle(t Triangle, c sphere.Cap) bool {
	for i := 0; i < 3; i++ {
		a, b := t[i], t[(i+1)%3]
		if distToArc(c.Center, a, b) <= c.Radius {
			return true
		}
	}
	return false
}

// distToArc returns the angular distance in degrees from the unit vector p
// to the geodesic arc segment from a to b.
func distToArc(p, a, b sphere.Vec) float64 {
	n := a.Cross(b)
	if n.Norm() == 0 {
		// Degenerate arc.
		return p.Sep(a)
	}
	n = n.Normalize()
	// Closest point on the full great circle.
	cp := p.Sub(n.Scale(n.Dot(p)))
	if cp.Norm() < 1e-15 {
		// p is at the circle's pole: equidistant from the whole circle.
		return 90
	}
	cp = cp.Normalize()
	// Is cp within the segment? It is iff it lies on the arc side of both
	// endpoints: (a × cp)·n >= 0 and (cp × b)·n >= 0.
	if a.Cross(cp).Dot(n) >= 0 && cp.Cross(b).Dot(n) >= 0 {
		return p.Sep(cp)
	}
	return math.Min(p.Sep(a), p.Sep(b))
}

// TrixelSize returns the approximate angular side length in degrees of a
// trixel at the given level (the root edge is 90° and each level halves it).
func TrixelSize(level int) float64 {
	return 90 / math.Pow(2, float64(level))
}

// LevelForRadius returns a subdivision level whose trixels are commensurate
// with a search radius: fine enough that partial trixels do not dominate,
// coarse enough that the cover stays short.
func LevelForRadius(radiusDeg float64) int {
	level := 0
	for TrixelSize(level) > radiusDeg && level < MaxLevel {
		level++
	}
	// One extra level tightens the cover boundary considerably.
	if level < MaxLevel {
		level++
	}
	return level
}
