package htm

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"skyquery/internal/sphere"
)

// unitVec makes sphere.Vec quick-generable as a uniform point on the
// sphere.
type unitVec sphere.Vec

// Generate implements quick.Generator.
func (unitVec) Generate(rng *rand.Rand, size int) reflect.Value {
	for {
		x := 2*rng.Float64() - 1
		y := 2*rng.Float64() - 1
		s := x*x + y*y
		if s >= 1 {
			continue
		}
		f := 2 * math.Sqrt(1-s)
		return reflect.ValueOf(unitVec{X: x * f, Y: y * f, Z: 1 - 2*s})
	}
}

func TestQuickLookupContainment(t *testing.T) {
	f := func(v unitVec, rawLevel uint8) bool {
		level := int(rawLevel) % (MaxLevel + 1)
		id := Lookup(sphere.Vec(v), level)
		return id.Level() == level && id.Triangle().Contains(sphere.Vec(v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickPrefixProperty(t *testing.T) {
	f := func(v unitVec, a, b uint8) bool {
		l1 := int(a) % 15
		l2 := int(b) % 15
		if l1 > l2 {
			l1, l2 = l2, l1
		}
		deep := Lookup(sphere.Vec(v), l2)
		shallow := Lookup(sphere.Vec(v), l1)
		return deep>>(2*uint(l2-l1)) == shallow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickIDAlgebra(t *testing.T) {
	f := func(v unitVec, raw uint8) bool {
		level := 1 + int(raw)%12
		id := Lookup(sphere.Vec(v), level)
		// Child/Parent inverse; AtLevel covers exactly 4^d descendants.
		for k := 0; k < 4; k++ {
			if id.Child(k).Parent() != id {
				return false
			}
		}
		r := id.AtLevel(level + 3)
		return r.Count() == 1<<(2*3) && id.Valid()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickCoverSoundness(t *testing.T) {
	// Any point inside a random cap must fall in the cap's cover; any
	// point in an inner range must be inside the cap.
	f := func(center unitVec, rRaw uint16, probe unitVec) bool {
		radius := 0.01 + float64(rRaw%9000)/100 // 0.01..90 degrees
		c := sphere.CapAround(sphere.Vec(center), radius)
		leaf := 10
		cov := CoverCap(c, LevelForRadius(radius), leaf)
		id := Lookup(sphere.Vec(probe), leaf)
		inInner := rangesContain(cov.Inner, id)
		inPartial := rangesContain(cov.Partial, id)
		if c.Contains(sphere.Vec(probe)) && !inInner && !inPartial {
			return false
		}
		if inInner && !c.Contains(sphere.Vec(probe)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func rangesContain(rs []Range, id ID) bool {
	for _, r := range rs {
		if r.Contains(id) {
			return true
		}
	}
	return false
}

func TestQuickMergeRangesInvariants(t *testing.T) {
	f := func(raw []uint32) bool {
		var rs []Range
		for i := 0; i+1 < len(raw); i += 2 {
			lo := ID(raw[i]%10000) + 8
			hi := lo + ID(raw[i+1]%50)
			rs = append(rs, Range{Lo: lo, Hi: hi})
		}
		orig := append([]Range(nil), rs...)
		merged := MergeRanges(rs)
		// Sorted, disjoint, non-adjacent.
		for i := 1; i < len(merged); i++ {
			if merged[i].Lo <= merged[i-1].Hi+1 {
				return false
			}
		}
		// Every original ID is covered.
		for _, r := range orig {
			if !rangesContain(merged, r.Lo) || !rangesContain(merged, r.Hi) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
