// Package value defines the dynamically typed SQL values that flow through
// the SkyQuery engine: table cells, expression results, and the fields of
// datasets shipped between SkyNodes. SQL three-valued logic is honored:
// NULL propagates through arithmetic and comparisons, and AND/OR follow
// Kleene semantics.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Type enumerates value types.
type Type uint8

const (
	// NullType is the type of the SQL NULL.
	NullType Type = iota
	// IntType is a 64-bit signed integer.
	IntType
	// FloatType is a 64-bit float.
	FloatType
	// StringType is a UTF-8 string.
	StringType
	// BoolType is a boolean.
	BoolType
)

// String implements fmt.Stringer.
func (t Type) String() string {
	switch t {
	case NullType:
		return "NULL"
	case IntType:
		return "INT"
	case FloatType:
		return "FLOAT"
	case StringType:
		return "STRING"
	case BoolType:
		return "BOOL"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType parses the names produced by Type.String.
func ParseType(s string) (Type, error) {
	switch s {
	case "NULL":
		return NullType, nil
	case "INT":
		return IntType, nil
	case "FLOAT":
		return FloatType, nil
	case "STRING":
		return StringType, nil
	case "BOOL":
		return BoolType, nil
	}
	return NullType, fmt.Errorf("value: unknown type %q", s)
}

// Value is a single dynamically typed SQL value. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64
	f   float64
	s   string
	b   bool
}

// Null is the SQL NULL.
var Null = Value{}

// Int returns an integer value.
func Int(i int64) Value { return Value{typ: IntType, i: i} }

// Float returns a float value.
func Float(f float64) Value { return Value{typ: FloatType, f: f} }

// String returns a string value.
func String(s string) Value { return Value{typ: StringType, s: s} }

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{typ: BoolType, b: b} }

// Type returns the value's type.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.typ == NullType }

// AsInt returns the integer payload. It is only meaningful for IntType.
func (v Value) AsInt() int64 { return v.i }

// AsFloat returns the value as a float64 with int→float coercion; ok is
// false for non-numeric values.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.typ {
	case IntType:
		return float64(v.i), true
	case FloatType:
		return v.f, true
	}
	return 0, false
}

// AsString returns the string payload. It is only meaningful for StringType.
func (v Value) AsString() string { return v.s }

// AsBool returns the boolean payload. It is only meaningful for BoolType.
func (v Value) AsBool() bool { return v.b }

// IsTrue reports whether the value is boolean TRUE (NULL and FALSE are not).
func (v Value) IsTrue() bool { return v.typ == BoolType && v.b }

// String implements fmt.Stringer with SQL-ish rendering.
func (v Value) String() string {
	switch v.typ {
	case NullType:
		return "NULL"
	case IntType:
		return strconv.FormatInt(v.i, 10)
	case FloatType:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringType:
		return "'" + v.s + "'"
	case BoolType:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	}
	return "?"
}

// Encode renders the value for wire transport (no quoting); Decode with
// the matching type restores it. NULL encodes to the empty string and is
// distinguished by the null flag in the container format.
func (v Value) Encode() string {
	switch v.typ {
	case IntType:
		return strconv.FormatInt(v.i, 10)
	case FloatType:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case StringType:
		return v.s
	case BoolType:
		if v.b {
			return "true"
		}
		return "false"
	}
	return ""
}

// Decode parses an Encode result given the target type.
func Decode(s string, t Type) (Value, error) {
	switch t {
	case NullType:
		return Null, nil
	case IntType:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("value: bad int %q: %v", s, err)
		}
		return Int(i), nil
	case FloatType:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("value: bad float %q: %v", s, err)
		}
		return Float(f), nil
	case StringType:
		return String(s), nil
	case BoolType:
		switch s {
		case "true", "TRUE", "1":
			return Bool(true), nil
		case "false", "FALSE", "0":
			return Bool(false), nil
		}
		return Null, fmt.Errorf("value: bad bool %q", s)
	}
	return Null, fmt.Errorf("value: bad type %v", t)
}

// Compare orders two values: -1, 0, +1. NULL compared with anything
// returns ok=false (SQL UNKNOWN). Numeric types compare across int/float;
// other type mixes are an error.
func Compare(a, b Value) (cmp int, ok bool, err error) {
	if a.IsNull() || b.IsNull() {
		return 0, false, nil
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	switch {
	case aNum && bNum:
		switch {
		case af < bf:
			return -1, true, nil
		case af > bf:
			return 1, true, nil
		default:
			return 0, true, nil
		}
	case a.typ == StringType && b.typ == StringType:
		switch {
		case a.s < b.s:
			return -1, true, nil
		case a.s > b.s:
			return 1, true, nil
		default:
			return 0, true, nil
		}
	case a.typ == BoolType && b.typ == BoolType:
		ai, bi := 0, 0
		if a.b {
			ai = 1
		}
		if b.b {
			bi = 1
		}
		return ai - bi, true, nil
	}
	return 0, false, fmt.Errorf("value: cannot compare %v with %v", a.typ, b.typ)
}

// Arith applies a binary arithmetic operator. Integer operands stay
// integers for + - * %; division always yields a float; NULL propagates.
func Arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == "%" {
		if a.typ != IntType || b.typ != IntType {
			return Null, fmt.Errorf("value: %% requires integers, got %v %v", a.typ, b.typ)
		}
		if b.i == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return Int(a.i % b.i), nil
	}
	af, aNum := a.AsFloat()
	bf, bNum := b.AsFloat()
	if !aNum || !bNum {
		if op == "+" && a.typ == StringType && b.typ == StringType {
			return String(a.s + b.s), nil
		}
		return Null, fmt.Errorf("value: %s requires numbers, got %v %v", op, a.typ, b.typ)
	}
	bothInt := a.typ == IntType && b.typ == IntType
	switch op {
	case "+":
		if bothInt {
			return Int(a.i + b.i), nil
		}
		return Float(af + bf), nil
	case "-":
		if bothInt {
			return Int(a.i - b.i), nil
		}
		return Float(af - bf), nil
	case "*":
		if bothInt {
			return Int(a.i * b.i), nil
		}
		return Float(af * bf), nil
	case "/":
		if bf == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return Float(af / bf), nil
	}
	return Null, fmt.Errorf("value: unknown operator %q", op)
}

// Neg negates a numeric value; NULL propagates.
func Neg(v Value) (Value, error) {
	switch v.typ {
	case NullType:
		return Null, nil
	case IntType:
		return Int(-v.i), nil
	case FloatType:
		return Float(-v.f), nil
	}
	return Null, fmt.Errorf("value: cannot negate %v", v.typ)
}

// And implements Kleene three-valued AND.
func And(a, b Value) Value {
	if a.typ == BoolType && !a.b || b.typ == BoolType && !b.b {
		return Bool(false)
	}
	if a.IsNull() || b.IsNull() {
		return Null
	}
	return Bool(a.IsTrue() && b.IsTrue())
}

// Or implements Kleene three-valued OR.
func Or(a, b Value) Value {
	if a.IsTrue() || b.IsTrue() {
		return Bool(true)
	}
	if a.IsNull() || b.IsNull() {
		return Null
	}
	return Bool(false)
}

// Not implements three-valued NOT.
func Not(v Value) Value {
	if v.IsNull() {
		return Null
	}
	return Bool(!v.IsTrue())
}

// Equal reports strict equality used for hashing/dedup (NULL equals NULL
// here, unlike SQL comparison).
func Equal(a, b Value) bool {
	if a.typ != b.typ {
		// Allow int/float cross-equality for numerics.
		af, aNum := a.AsFloat()
		bf, bNum := b.AsFloat()
		return aNum && bNum && af == bf
	}
	switch a.typ {
	case NullType:
		return true
	case IntType:
		return a.i == b.i
	case FloatType:
		return a.f == b.f || (math.IsNaN(a.f) && math.IsNaN(b.f))
	case StringType:
		return a.s == b.s
	case BoolType:
		return a.b == b.b
	}
	return false
}
