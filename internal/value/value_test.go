package value

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructorsAndAccessors(t *testing.T) {
	if !Null.IsNull() || Null.Type() != NullType {
		t.Error("zero Value must be NULL")
	}
	if v := Int(42); v.Type() != IntType || v.AsInt() != 42 {
		t.Errorf("Int: %v", v)
	}
	if v := Float(2.5); v.Type() != FloatType {
		t.Errorf("Float: %v", v)
	} else if f, ok := v.AsFloat(); !ok || f != 2.5 {
		t.Errorf("AsFloat: %v %v", f, ok)
	}
	if v := String("x"); v.Type() != StringType || v.AsString() != "x" {
		t.Errorf("String: %v", v)
	}
	if v := Bool(true); v.Type() != BoolType || !v.AsBool() || !v.IsTrue() {
		t.Errorf("Bool: %v", v)
	}
	if Bool(false).IsTrue() || Null.IsTrue() {
		t.Error("IsTrue must be false for FALSE and NULL")
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Error("int should coerce to float")
	}
	if _, ok := String("x").AsFloat(); ok {
		t.Error("string should not coerce to float")
	}
}

func TestTypeStringRoundTrip(t *testing.T) {
	for _, typ := range []Type{NullType, IntType, FloatType, StringType, BoolType} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("ParseType(%v.String()) = %v, %v", typ, got, err)
		}
	}
	if _, err := ParseType("NOPE"); err == nil {
		t.Error("expected error for unknown type name")
	}
	if s := Type(99).String(); s == "" {
		t.Error("unknown type should still render")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-5), Int(math.MaxInt64),
		Float(0), Float(-2.5e-7), Float(1e300),
		String(""), String("hello world"), String("with 'quotes' & <xml>"),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		got, err := Decode(v.Encode(), v.Type())
		if err != nil {
			t.Errorf("Decode(%v): %v", v, err)
			continue
		}
		if !Equal(got, v) {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
	if v, err := Decode("anything", NullType); err != nil || !v.IsNull() {
		t.Errorf("Decode null = %v, %v", v, err)
	}
	for _, bad := range []struct {
		s string
		t Type
	}{{"x", IntType}, {"x", FloatType}, {"maybe", BoolType}, {"1", Type(99)}} {
		if _, err := Decode(bad.s, bad.t); err == nil {
			t.Errorf("Decode(%q, %v) should fail", bad.s, bad.t)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		cmp  int
		ok   bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Float(2.5), Int(2), 1, true},
		{Int(2), Float(2.0), 0, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{Bool(false), Bool(true), -1, true},
		{Bool(true), Bool(true), 0, true},
		{Null, Int(1), 0, false},
		{Int(1), Null, 0, false},
	}
	for _, c := range cases {
		cmp, ok, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("Compare(%v,%v): %v", c.a, c.b, err)
			continue
		}
		if ok != c.ok || (ok && sign(cmp) != c.cmp) {
			t.Errorf("Compare(%v,%v) = %d,%v want %d,%v", c.a, c.b, cmp, ok, c.cmp, c.ok)
		}
	}
	if _, _, err := Compare(Int(1), String("x")); err == nil {
		t.Error("comparing int with string should error")
	}
	if _, _, err := Compare(Bool(true), Int(1)); err == nil {
		t.Error("comparing bool with int should error")
	}
}

func sign(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   string
		a, b Value
		want Value
	}{
		{"+", Int(2), Int(3), Int(5)},
		{"-", Int(2), Int(3), Int(-1)},
		{"*", Int(2), Int(3), Int(6)},
		{"+", Int(2), Float(0.5), Float(2.5)},
		{"/", Int(7), Int(2), Float(3.5)},
		{"%", Int(7), Int(2), Int(1)},
		{"+", String("a"), String("b"), String("ab")},
		{"+", Null, Int(1), Null},
		{"*", Int(1), Null, Null},
	}
	for _, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("Arith(%s,%v,%v): %v", c.op, c.a, c.b, err)
			continue
		}
		if !Equal(got, c.want) || got.Type() != c.want.Type() {
			t.Errorf("Arith(%s,%v,%v) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
	for _, bad := range []struct {
		op   string
		a, b Value
	}{
		{"/", Int(1), Int(0)},
		{"%", Int(1), Int(0)},
		{"%", Float(1), Int(1)},
		{"-", String("a"), String("b")},
		{"?", Int(1), Int(1)},
	} {
		if _, err := Arith(bad.op, bad.a, bad.b); err == nil {
			t.Errorf("Arith(%s,%v,%v) should fail", bad.op, bad.a, bad.b)
		}
	}
}

func TestNeg(t *testing.T) {
	if v, err := Neg(Int(3)); err != nil || v.AsInt() != -3 {
		t.Errorf("Neg int: %v %v", v, err)
	}
	if v, err := Neg(Float(2.5)); err != nil {
		t.Error(err)
	} else if f, _ := v.AsFloat(); f != -2.5 {
		t.Errorf("Neg float: %v", v)
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Errorf("Neg null: %v %v", v, err)
	}
	if _, err := Neg(String("x")); err == nil {
		t.Error("Neg string should fail")
	}
}

func TestKleeneLogic(t *testing.T) {
	T, F, N := Bool(true), Bool(false), Null
	andTable := []struct{ a, b, want Value }{
		{T, T, T}, {T, F, F}, {F, T, F}, {F, F, F},
		{T, N, N}, {N, T, N}, {F, N, F}, {N, F, F}, {N, N, N},
	}
	for _, c := range andTable {
		if got := And(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	orTable := []struct{ a, b, want Value }{
		{T, T, T}, {T, F, T}, {F, T, T}, {F, F, F},
		{T, N, T}, {N, T, T}, {F, N, N}, {N, F, N}, {N, N, N},
	}
	for _, c := range orTable {
		if got := Or(c.a, c.b); !Equal(got, c.want) {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if !Equal(Not(T), F) || !Equal(Not(F), T) || !Not(N).IsNull() {
		t.Error("Not table wrong")
	}
}

func TestEqual(t *testing.T) {
	if !Equal(Int(2), Float(2)) {
		t.Error("numeric cross-type equality")
	}
	if Equal(Int(2), Float(2.5)) {
		t.Error("2 != 2.5")
	}
	if !Equal(Null, Null) {
		t.Error("Null equals Null for dedup purposes")
	}
	if Equal(Null, Int(0)) {
		t.Error("Null != 0")
	}
	if !Equal(Float(math.NaN()), Float(math.NaN())) {
		t.Error("NaN equals NaN for dedup purposes")
	}
	if Equal(String("a"), Bool(true)) {
		t.Error("string != bool")
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"NULL":  Null,
		"42":    Int(42),
		"2.5":   Float(2.5),
		"'hi'":  String("hi"),
		"TRUE":  Bool(true),
		"FALSE": Bool(false),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("%v.String() = %q, want %q", v, got, want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1, _ := Compare(Int(a), Int(b))
		c2, ok2, _ := Compare(Int(b), Int(a))
		return ok1 && ok2 && sign(c1) == -sign(c2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArithIntFloatConsistency(t *testing.T) {
	f := func(a, b int32) bool {
		ai, _ := Arith("+", Int(int64(a)), Int(int64(b)))
		af, _ := Arith("+", Float(float64(a)), Float(float64(b)))
		x, _ := ai.AsFloat()
		y, _ := af.AsFloat()
		return x == y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
