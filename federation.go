package skyquery

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"skyquery/internal/nettrace"
	"skyquery/internal/portal"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/survey"
)

// Codec selects the wire codec for SOAP response bodies.
type Codec = soap.Codec

// Codec values for Options.Codec and the daemons' -codec flag.
const (
	// CodecNegotiate (the default) answers requests from binary-capable
	// clients with the columnar frame format and everyone else with XML.
	CodecNegotiate = soap.CodecNegotiate
	// CodecXML forces XML both ways — the paper-faithful wire format.
	CodecXML = soap.CodecXML
)

// ParseCodec parses a codec name ("binary", "columnar", "negotiate",
// "xml", or empty for the default).
func ParseCodec(s string) (Codec, bool) { return soap.ParseCodec(s) }

// Admission configures a node's step-execution admission gate (see
// skynode.Admission). The zero value disables admission.
type Admission = skynode.Admission

// DefaultOverloadRetries is how often clients retry a query shed by an
// overloaded node when Options.OverloadRetries is zero.
const DefaultOverloadRetries = 4

// NodeSpec attaches a hand-built archive database to a federation, for
// callers that do not want a generated synthetic survey.
type NodeSpec struct {
	// Name is the archive name used in queries.
	Name string
	// DB is the archive database; its PrimaryTable must exist and have a
	// spatial index (EnableSpatial).
	DB *DB
	// PrimaryTable, RACol, DecCol locate the object positions.
	PrimaryTable, RACol, DecCol string
	// SigmaArcsec is the archive's positional error.
	SigmaArcsec float64
}

// Options configures Launch.
type Options struct {
	// Region is the sky field synthetic surveys populate. The zero value
	// means the paper's example field: a 0.25 degree cap at (185, -0.5).
	Region Cap
	// Bodies is the number of true bodies to generate (default 1000).
	Bodies int
	// GalaxyFraction is the fraction of generated bodies that are
	// galaxies (default 0.4).
	GalaxyFraction float64
	// Seed drives field generation (default 1).
	Seed int64
	// Surveys configures the synthetic archives. When empty and no Nodes
	// are given, a three-survey default modeled on SDSS/2MASS/FIRST is
	// used.
	Surveys []SurveySpec
	// Nodes attaches hand-built archives in addition to Surveys.
	Nodes []NodeSpec
	// WANLatency and WANBandwidthBps shape all federation traffic through
	// the instrumented transport (0 = off).
	WANLatency time.Duration
	// WANBandwidthBps simulates link bandwidth in bytes/second (0 = off).
	WANBandwidthBps int64
	// RecordCalls enables the transport's per-call log.
	RecordCalls bool
	// ChunkRows bounds rows per SOAP message (0 = 5000).
	ChunkRows int
	// MessageLimit bounds SOAP message sizes on every server and client
	// (0 = the 10 MB default; negative = unlimited).
	MessageLimit int64
	// IncludeMatchColumns adds _matchRA/_matchDec/_logLikelihood/_nObs to
	// cross-match results.
	IncludeMatchColumns bool
	// CallTimeout bounds every portal→node SOAP call end to end (0 = the
	// soap.DefaultCallTimeout of 2 minutes; negative = no deadline). It
	// is the guard against a stalled node pinning a federated query
	// forever.
	CallTimeout time.Duration
	// Parallelism bounds the worker pool every node's cross-match chain
	// step partitions its tuples across, and is also written into plans
	// as the Portal's hint. 0 means GOMAXPROCS; 1 recovers the sequential
	// executor. Results are bit-identical at every setting.
	Parallelism int
	// Codec selects the SOAP wire codec for every server and client in
	// the federation. The default negotiates the binary columnar format;
	// CodecXML restores the paper-faithful XML wire.
	Codec Codec
	// Admission configures every node's step-execution admission gate.
	// The zero value disables admission (no limits, as before).
	Admission Admission
	// PlanCacheSize bounds the Portal's compiled-plan cache (entries per
	// generation; 0 = the default 256, negative = disabled).
	PlanCacheSize int
	// OverloadRetries is how often SOAP clients retry a call shed by an
	// overloaded node, with doubling backoff (0 = DefaultOverloadRetries,
	// negative = never retry).
	OverloadRetries int
	// Shards partitions every generated survey archive into this many
	// trixel-range shards, each served by its own SkyNode (0 or 1 = one
	// node per archive, the paper's layout). Queries scatter to only the
	// shards whose trixel ranges intersect the query cover; results are
	// bit-identical at every shard count.
	Shards int
	// Replicas adds this many read-replica followers per shard. Queries
	// prefer followers and fail over between replicas; appends go to the
	// shard leader.
	Replicas int
	// CountProbeOrder reverts chain ordering to the pure count-star rule
	// of §5.3, ignoring node column statistics. The default (false)
	// orders by the transfer-cost model when statistics are available.
	CountProbeOrder bool
	// AdaptiveReorder stamps plans with permission for chain nodes to
	// re-order the not-yet-called downstream suffix when live estimates
	// diverge from the plan's. Results are bit-identical either way.
	AdaptiveReorder bool
	// PortalEvents and NodeEvents receive trace events when set.
	PortalEvents func(kind, detail string)
	NodeEvents   func(node, kind, detail string)
}

// DefaultSurveys mirrors the three archives of the paper's example query:
// a deep optical survey (SDSS-like), an infrared survey (2MASS-like), and
// a shallow radio survey (FIRST-like).
func DefaultSurveys() []SurveySpec {
	return []SurveySpec{
		{Name: "SDSS", SigmaArcsec: 0.1, Completeness: 0.95, FluxOffset: 3, Seed: 101},
		{Name: "TWOMASS", SigmaArcsec: 0.2, Completeness: 0.85, ExtraDensity: 0.1, Seed: 102},
		{Name: "FIRST", SigmaArcsec: 0.4, Completeness: 0.5, FluxOffset: -1, Seed: 103},
	}
}

// Federation is a running in-process federation: a Portal plus SkyNodes,
// all served over loopback HTTP and speaking SOAP to each other.
type Federation struct {
	// Portal is the mediator.
	Portal *portal.Portal
	// PortalURL is the Portal's SOAP endpoint.
	PortalURL string
	// Nodes maps archive names to their running SkyNodes.
	Nodes map[string]*skynode.Node
	// NodeURLs maps archive names to their SOAP endpoints.
	NodeURLs map[string]string
	// Field is the generated population (nil when only NodeSpecs were
	// given).
	Field *Field
	// Archives holds the generated synthetic archives by name.
	Archives map[string]*survey.Archive
	// Transport carries all traffic; read its Stats for bytes-on-wire.
	Transport *Transport

	mu       sync.Mutex
	servers  []*http.Server
	lns      []net.Listener
	nodeSrvs map[string]*http.Server
	codec    Codec
	retries  int
}

// KillNode abruptly shuts down the HTTP server of one node (a Nodes key
// such as "SDSS", "SDSS/0", or "SDSS/0/r1"), cutting its in-flight
// requests — the test stand-in for a crashed replica. The registry still
// lists the endpoint; queries discover the failure and fail over.
func (f *Federation) KillNode(key string) error {
	f.mu.Lock()
	srv := f.nodeSrvs[key]
	f.mu.Unlock()
	if srv == nil {
		return fmt.Errorf("skyquery: no node %q", key)
	}
	return srv.Close()
}

// Launch builds and starts a federation.
func Launch(opts Options) (*Federation, error) {
	if opts.Region.Radius == 0 {
		opts.Region = NewCap(185, -0.5, 0.25)
	}
	if opts.Bodies == 0 {
		opts.Bodies = 1000
	}
	if opts.GalaxyFraction == 0 {
		opts.GalaxyFraction = 0.4
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	if len(opts.Surveys) == 0 && len(opts.Nodes) == 0 {
		opts.Surveys = DefaultSurveys()
	}

	tr := &nettrace.Transport{
		Latency:      opts.WANLatency,
		BandwidthBps: opts.WANBandwidthBps,
		RecordCalls:  opts.RecordCalls,
	}
	callTimeout := opts.CallTimeout
	switch {
	case callTimeout == 0:
		callTimeout = soap.DefaultCallTimeout
	case callTimeout < 0:
		callTimeout = 0
	}
	retries := opts.OverloadRetries
	switch {
	case retries == 0:
		retries = DefaultOverloadRetries
	case retries < 0:
		retries = 0
	}
	soapClient := &soap.Client{
		HTTPClient:   tr.ClientWithTimeout(callTimeout),
		MessageLimit: opts.MessageLimit,
		Codec:        opts.Codec,
		MaxRetries:   retries,
	}

	f := &Federation{
		Nodes:     map[string]*skynode.Node{},
		NodeURLs:  map[string]string{},
		Archives:  map[string]*survey.Archive{},
		Transport: tr,
		codec:     opts.Codec,
		retries:   retries,
	}

	var portalEvents func(portal.Event)
	if opts.PortalEvents != nil {
		fn := opts.PortalEvents
		portalEvents = func(e portal.Event) { fn(e.Kind, e.Detail) }
	}
	f.Portal = portal.New(portal.Config{
		Client:              soapClient,
		ChunkRows:           opts.ChunkRows,
		MessageLimit:        opts.MessageLimit,
		IncludeMatchColumns: opts.IncludeMatchColumns,
		Parallelism:         opts.Parallelism,
		PlanCacheSize:       opts.PlanCacheSize,
		CountProbeOrder:     opts.CountProbeOrder,
		AdaptiveReorder:     opts.AdaptiveReorder,
		Codec:               opts.Codec,
		OnEvent:             portalEvents,
	})
	portalURL, err := f.serve(f.Portal.Server())
	if err != nil {
		f.Close()
		return nil, err
	}
	f.PortalURL = portalURL
	f.Portal.SetSelfURL(portalURL)
	if err := f.Portal.SetWSDL(portalURL); err != nil {
		f.Close()
		return nil, err
	}

	var nodeEvents func(skynode.Event)
	if opts.NodeEvents != nil {
		fn := opts.NodeEvents
		nodeEvents = func(e skynode.Event) { fn(e.Node, e.Kind, e.Detail) }
	}

	// Generated surveys, sharded when Options.Shards asks for it.
	if len(opts.Surveys) > 0 {
		f.Field = GenerateField(opts.Region, opts.Bodies, opts.GalaxyFraction, opts.Seed)
		for _, cfg := range opts.Surveys {
			a := survey.Observe(f.Field, cfg)
			f.Archives[cfg.Name] = a
			if err := f.attachSharded(a, cfg, soapClient, opts, nodeEvents); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	// Hand-built archives.
	for _, spec := range opts.Nodes {
		if err := f.attach(spec, soapClient, opts, nodeEvents); err != nil {
			f.Close()
			return nil, err
		}
	}
	return f, nil
}

// attachSharded serves one generated archive: as a single node when
// Options.Shards is 0 or 1 and no replicas are asked for, otherwise as
// a trixel-range sharded replica set. Followers serve the same sealed
// data as their shard leader (they share its database — the in-process
// stand-in for replication of sealed column blocks).
func (f *Federation) attachSharded(a *survey.Archive, cfg SurveySpec, soapClient *soap.Client, opts Options, onEvent func(skynode.Event)) error {
	shards := opts.Shards
	if shards <= 1 && opts.Replicas <= 0 {
		db, err := a.BuildDB()
		if err != nil {
			return err
		}
		return f.attach(NodeSpec{
			Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec,
		}, soapClient, opts, onEvent)
	}
	if shards <= 0 {
		shards = 1
	}
	parts := a.Partition(shards)
	level := a.SpatialLevel()
	for k, part := range parts {
		db, err := part.Archive.BuildDB()
		if err != nil {
			return err
		}
		spec := NodeSpec{
			Name: cfg.Name, DB: db, PrimaryTable: survey.TableName,
			RACol: "ra", DecCol: "dec", SigmaArcsec: cfg.SigmaArcsec,
		}
		si := portal.ShardInfo{Index: k, Count: shards, Level: level, Lo: part.Lo, Hi: part.Hi}
		url, err := f.serveNode(fmt.Sprintf("%s/%d", cfg.Name, k), spec, soapClient, opts, onEvent)
		if err != nil {
			return err
		}
		if err := f.Portal.RegisterShard(cfg.Name, url, si); err != nil {
			return err
		}
		for r := 0; r < opts.Replicas; r++ {
			// A follower shares the leader's database: identical sealed
			// blocks, served from another node.
			url, err := f.serveNode(fmt.Sprintf("%s/%d/r%d", cfg.Name, k, r+1), spec, soapClient, opts, onEvent)
			if err != nil {
				return err
			}
			fsi := si
			fsi.Follower = true
			if err := f.Portal.RegisterShard(cfg.Name, url, fsi); err != nil {
				return err
			}
		}
	}
	return nil
}

// serveNode builds a SkyNode for the spec, serves it on loopback HTTP,
// and records it under the given key (the archive name for flat nodes,
// "archive/shard[/rN]" for shard replicas) without registering it.
func (f *Federation) serveNode(key string, spec NodeSpec, soapClient *soap.Client, opts Options, onEvent func(skynode.Event)) (string, error) {
	n, err := skynode.New(skynode.Config{
		Name:         spec.Name,
		DB:           spec.DB,
		PrimaryTable: spec.PrimaryTable,
		RACol:        spec.RACol,
		DecCol:       spec.DecCol,
		SigmaArcsec:  spec.SigmaArcsec,
		Client:       soapClient,
		ChunkRows:    opts.ChunkRows,
		MessageLimit: opts.MessageLimit,
		Parallelism:  opts.Parallelism,
		Admission:    opts.Admission,
		Codec:        opts.Codec,
		OnEvent:      onEvent,
	})
	if err != nil {
		return "", err
	}
	url, err := f.serve(n.Server())
	if err != nil {
		return "", err
	}
	if err := n.SetWSDL(url); err != nil {
		return "", err
	}
	f.Nodes[key] = n
	f.NodeURLs[key] = url
	f.mu.Lock()
	if f.nodeSrvs == nil {
		f.nodeSrvs = map[string]*http.Server{}
	}
	f.nodeSrvs[key] = f.servers[len(f.servers)-1]
	f.mu.Unlock()
	return url, nil
}

func (f *Federation) attach(spec NodeSpec, soapClient *soap.Client, opts Options, onEvent func(skynode.Event)) error {
	url, err := f.serveNode(spec.Name, spec, soapClient, opts, onEvent)
	if err != nil {
		return err
	}
	return f.Portal.Register(spec.Name, url)
}

// serve starts an HTTP server for the handler on a loopback port and
// returns its URL.
func (f *Federation) serve(h http.Handler) (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", fmt.Errorf("skyquery: listen: %w", err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	f.mu.Lock()
	f.servers = append(f.servers, srv)
	f.lns = append(f.lns, ln)
	f.mu.Unlock()
	return "http://" + ln.Addr().String(), nil
}

// Query submits a query to the federation's Portal (in-process; for the
// SOAP path use Client()). Cancelling ctx aborts in-flight federation
// work — scatter fan-out, chunk transfers, and node execution unwind.
func (f *Federation) Query(ctx context.Context, sql string) (*Result, error) {
	return f.Portal.Query(ctx, sql)
}

// PullQuery runs the pull-to-portal baseline executor for comparison
// experiments.
func (f *Federation) PullQuery(ctx context.Context, sql string) (*Result, error) {
	return f.Portal.PullQuery(ctx, sql)
}

// BuildPlan constructs (but does not execute) the plan for a cross-match
// query, including the count-star probes.
func (f *Federation) BuildPlan(ctx context.Context, sql string) (*Plan, error) {
	return f.Portal.BuildPlan(ctx, sql)
}

// Explain builds the query's plan and renders an EXPLAIN-style summary.
func (f *Federation) Explain(ctx context.Context, sql string) (string, error) {
	return f.Portal.Explain(ctx, sql)
}

// Client returns a SOAP client bound to the Portal endpoint, exercising
// the full web-service path a remote astronomer would use.
func (f *Federation) Client() *Client {
	c := Dial(f.PortalURL)
	c.SOAP = &soap.Client{HTTPClient: f.Transport.Client(), Codec: f.codec, MaxRetries: f.retries}
	return c
}

// Close shuts down all HTTP servers.
func (f *Federation) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	var firstErr error
	for _, srv := range f.servers {
		if err := srv.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	f.servers = nil
	f.lns = nil
	return firstErr
}
