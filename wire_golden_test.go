package skyquery

// The wire-protocol golden corpus: the same testdata/queries/*.sql as
// TestGoldenQueryCorpus, but submitted over the full SOAP web-service
// path (Client -> Portal -> nodes) with the binary columnar codec
// negotiated end to end — and again with the codec forced to XML. Both
// wires must reproduce the checked-in goldens bit for bit at every
// combination of chain parallelism and scan batch size, proving the
// columnar frames are a pure transport: no value, null, type, or
// ordering change anywhere in the result.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"skyquery/internal/eval"
)

func TestWireGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "queries", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no golden queries found: %v", err)
	}
	sort.Strings(files)
	defer eval.SetBatchSize(eval.BatchSize())

	codecs := []struct {
		name  string
		codec Codec
	}{
		{"binary", CodecNegotiate},
		{"xml", CodecXML},
	}
	for _, cd := range codecs {
		batchSizes := []int{1, 3, eval.DefaultBatchSize}
		if cd.codec == CodecXML {
			// The XML fallback exercises the same engine below the wire;
			// one batch size suffices to prove the negotiation path.
			batchSizes = []int{eval.DefaultBatchSize}
		}
		for _, par := range []int{1, 4} {
			f := launch(t, Options{Bodies: 400, Parallelism: par, Codec: cd.codec})
			c := f.Client()
			for _, bs := range batchSizes {
				eval.SetBatchSize(bs)
				for _, file := range files {
					name := fmt.Sprintf("%s/%s/par=%d/batch=%d", cd.name, filepath.Base(file), par, bs)
					sql, err := os.ReadFile(file)
					if err != nil {
						t.Fatal(err)
					}
					want, err := os.ReadFile(strings.TrimSuffix(file, ".sql") + ".golden")
					if err != nil {
						t.Fatalf("%s: missing golden: %v", name, err)
					}
					res, err := c.Query(context.Background(), string(sql))
					if err != nil {
						t.Errorf("%s: query failed: %v", name, err)
						continue
					}
					if got := goldenEncode(res); got != string(want) {
						t.Errorf("%s: wire result diverges from golden\ngot:\n%s\nwant:\n%s", name, got, want)
					}
				}
			}
			f.Close()
		}
	}
}

// TestWireBinaryActuallyNegotiated proves the binary matrix above is not
// silently falling back to XML: the same query moves materially fewer
// response bytes over a binary-negotiated federation than over one
// forced to XML.
func TestWireBinaryActuallyNegotiated(t *testing.T) {
	bytesOnWire := func(codec Codec) int64 {
		f := launch(t, Options{Bodies: 400, Codec: codec})
		defer f.Close()
		if _, err := f.Client().Query(context.Background(), testQuery); err != nil {
			t.Fatal(err)
		}
		return f.Transport.Stats().BytesReceived
	}
	bin := bytesOnWire(CodecNegotiate)
	xml := bytesOnWire(CodecXML)
	if bin >= xml {
		t.Errorf("binary wire moved %d response bytes, XML %d — negotiation is not happening", bin, xml)
	}
}
