package skyquery

// Tests for the polygon AREA extension (§6 future work: "The AREA clause
// can also be extended to specify arbitrary polygons rather than just
// simple circles").

import (
	"context"
	"strings"
	"testing"

	"skyquery/internal/sphere"
)

// polyQuery selects matches inside a square around the field center.
const polyQuery = `
	SELECT O.object_id, T.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
	WHERE AREA(184.9, -0.6, 185.1, -0.6, 185.1, -0.4, 184.9, -0.4)
	  AND XMATCH(O, T) < 3.5`

func TestPolygonAreaEndToEnd(t *testing.T) {
	f := launch(t, Options{Bodies: 600})
	res, err := f.Query(context.Background(), polyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() == 0 {
		t.Fatal("no matches inside the polygon")
	}
	// Every match's SDSS observation must lie inside the polygon.
	poly, err := sphere.NewPolygon(
		[2]float64{184.9, -0.6}, [2]float64{185.1, -0.6},
		[2]float64{185.1, -0.4}, [2]float64{184.9, -0.4})
	if err != nil {
		t.Fatal(err)
	}
	posByID := map[int64]sphere.Vec{}
	for _, o := range f.Archives["SDSS"].Obs {
		posByID[o.ObjectID] = o.Pos
	}
	for _, row := range res.Rows {
		pos, ok := posByID[row[0].AsInt()]
		if !ok {
			t.Fatalf("unknown SDSS object %d", row[0].AsInt())
		}
		if !poly.Contains(pos) {
			t.Fatalf("object %d outside the polygon", row[0].AsInt())
		}
	}
}

func TestPolygonSubsetOfBoundingCircle(t *testing.T) {
	f := launch(t, Options{Bodies: 600})
	polyRes, err := f.Query(context.Background(), polyQuery)
	if err != nil {
		t.Fatal(err)
	}
	// A circle that covers the square must match at least as much.
	circleRes, err := f.Query(context.Background(), `
		SELECT O.object_id, T.object_id
		FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
		WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5`)
	if err != nil {
		t.Fatal(err)
	}
	if polyRes.NumRows() > circleRes.NumRows() {
		t.Errorf("polygon (%d) matched more than its bounding circle (%d)",
			polyRes.NumRows(), circleRes.NumRows())
	}
	if polyRes.NumRows() == circleRes.NumRows() {
		t.Log("warning: polygon selected everything; field may be too small to discriminate")
	}
}

func TestPolygonCountStarProbes(t *testing.T) {
	// Performance queries must carry the polygon AREA verbatim so counts
	// reflect the true region.
	f := launch(t, Options{Bodies: 400})
	p, err := f.BuildPlan(context.Background(), polyQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Area.IsPolygon() {
		t.Fatalf("plan area is not a polygon: %+v", p.Area)
	}
	if len(p.Area.Vertices) != 4 {
		t.Errorf("vertices = %d", len(p.Area.Vertices))
	}
	for _, s := range p.Steps {
		if s.Count <= 0 {
			t.Errorf("step %s count = %d; polygon probe failed", s.Archive, s.Count)
		}
	}
}

func TestPolygonRejectsBadShapes(t *testing.T) {
	f := launch(t, Options{Bodies: 100, Surveys: DefaultSurveys()[:2]})
	cases := []struct{ sql, wantSub string }{
		// Clockwise (inverted) square.
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
			WHERE AREA(184.9, -0.4, 185.1, -0.4, 185.1, -0.6, 184.9, -0.6)
			AND XMATCH(O, T) < 3.5`, "convex"},
		// Odd argument count.
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
			WHERE AREA(184.9, -0.4, 185.1, -0.4, 185.1) AND XMATCH(O, T) < 3.5`, "AREA takes"},
		// Two pairs only.
		{`SELECT O.object_id FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
			WHERE AREA(184.9, -0.4, 185.1, -0.4) AND XMATCH(O, T) < 3.5`, "AREA takes"},
	}
	for _, c := range cases {
		_, err := f.Query(context.Background(), c.sql)
		if err == nil {
			t.Errorf("Query(%.50q) succeeded, want %q", c.sql, c.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("err = %v, want %q", err, c.wantSub)
		}
	}
}

func TestPolygonRoundTripThroughDialect(t *testing.T) {
	// The polygon clause must survive String() -> Parse (used when local
	// queries are shipped in plans).
	f := launch(t, Options{Bodies: 100, Surveys: DefaultSurveys()[:2]})
	p, err := f.BuildPlan(context.Background(), polyQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Run the same plan again from its serialized form.
	data, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "<Vertex") {
		t.Errorf("serialized plan lacks vertices: %s", data)
	}
}
