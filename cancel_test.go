package skyquery

// Cancellation contract of the context-first query surface: cancelling
// the caller's context mid-stream must abort the in-flight federation
// work and release every server-side resource the query held — parked
// chunk transfers on the portal and the nodes, and admission slots —
// promptly, not by waiting for the chunk-store TTL sweep.

import (
	"context"
	"fmt"
	"testing"
	"time"
)

// drainResources polls until every node and the portal report zero
// in-flight admissions and zero parked chunk transfers.
func drainResources(t *testing.T, f *Federation) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		leak := ""
		for key, n := range f.Nodes {
			if st := n.AdmissionStats(); st.InFlight != 0 {
				leak = fmt.Sprintf("node %s: %d admission slot(s) still held", key, st.InFlight)
			}
			if p := n.ChunkPending(); p != 0 {
				leak = fmt.Sprintf("node %s: %d chunk transfer(s) still parked", key, p)
			}
		}
		if p := f.Portal.ChunkPending(); p != 0 {
			leak = fmt.Sprintf("portal: %d chunk transfer(s) still parked", p)
		}
		if leak == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("resources not released after cancel: %s", leak)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// cancelMidStream opens a row stream, reads one row, cancels the
// context, and asserts the iterator surfaces the cancellation and the
// federation releases everything the query held.
func cancelMidStream(t *testing.T, f *Federation, sql string) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	rows, err := f.Client().QueryRows(ctx, sql)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	if !rows.Next() {
		t.Fatalf("no first row before cancel: %v", rows.Err())
	}
	cancel()
	for rows.Next() {
		// Drain whatever the already-fetched page still yields; the next
		// page fetch must observe the cancellation.
	}
	if rows.Err() == nil {
		t.Error("stream ended cleanly after cancel; want a context error")
	}
	if err := rows.Close(); err != nil {
		t.Errorf("close after cancel: %v", err)
	}
	drainResources(t, f)
}

func TestCancelMidStreamReleasesResources(t *testing.T) {
	// The XML chunked wire is the deterministic cancellation surface: a
	// streamed columnar body is pushed whole into client socket buffers,
	// so with a small result the trailer can beat the cancel (a race, not
	// a leak — a completed stream holds nothing). Chunks are pulled: the
	// tail stays parked portal-side behind a continuation token until the
	// client fetches it, so cancelling between fetches must both error the
	// iterator and release the parked transfer.
	f := launch(t, Options{
		Bodies:    2000,
		ChunkRows: 50, // many chunks, so the cancel lands mid-transfer
		Codec:     CodecXML,
		Admission: Admission{MaxConcurrent: 4},
	})
	cancelMidStream(t, f, testQuery)
}

func TestCancelMidStreamReleasesResourcesSharded(t *testing.T) {
	// The sharded portal materializes the merged result before its first
	// page leaves (the v1 scatter trade-off), so a streamed body is fully
	// in flight before a client can cancel. Forcing the XML chunked wire
	// parks the tail chunks portal-side behind a continuation token —
	// cancelling between fetches must release that parked transfer.
	f := launch(t, Options{
		Bodies:    2000,
		ChunkRows: 50,
		Shards:    2,
		Codec:     CodecXML,
		Admission: Admission{MaxConcurrent: 4},
	})
	cancelMidStream(t, f, testQuery)
}
