package skyquery

// Functional options for Launch and Dial. LaunchWith(WithBodies(2000),
// WithShards(8)) reads as configuration, composes helper-built presets,
// and keeps call sites source-compatible when Options grows a field —
// prefer it to filling an Options literal by hand (the struct stays
// exported for tests and callers that build configuration dynamically).

import (
	"net/http"
	"time"
)

// Option configures one aspect of a federation Launch.
type Option func(*Options)

// LaunchWith builds and starts a federation from functional options:
//
//	f, err := skyquery.LaunchWith(
//		skyquery.WithBodies(2000),
//		skyquery.WithShards(8),
//		skyquery.WithParallelism(4),
//	)
func LaunchWith(opts ...Option) (*Federation, error) {
	var o Options
	for _, apply := range opts {
		apply(&o)
	}
	return Launch(o)
}

// WithRegion sets the sky field synthetic surveys populate.
func WithRegion(region Cap) Option { return func(o *Options) { o.Region = region } }

// WithBodies sets the number of true bodies to generate.
func WithBodies(n int) Option { return func(o *Options) { o.Bodies = n } }

// WithGalaxyFraction sets the fraction of generated bodies that are
// galaxies.
func WithGalaxyFraction(f float64) Option { return func(o *Options) { o.GalaxyFraction = f } }

// WithSeed sets the field-generation seed.
func WithSeed(seed int64) Option { return func(o *Options) { o.Seed = seed } }

// WithSurveys replaces the default three-survey layout.
func WithSurveys(specs ...SurveySpec) Option { return func(o *Options) { o.Surveys = specs } }

// WithNodes attaches hand-built archives.
func WithNodes(specs ...NodeSpec) Option {
	return func(o *Options) { o.Nodes = append(o.Nodes, specs...) }
}

// WithWAN shapes all federation traffic with the given one-way latency
// and link bandwidth (0 disables either).
func WithWAN(latency time.Duration, bandwidthBps int64) Option {
	return func(o *Options) { o.WANLatency = latency; o.WANBandwidthBps = bandwidthBps }
}

// WithRecordedCalls enables the transport's per-call log
// (Federation.Transport.Calls).
func WithRecordedCalls() Option { return func(o *Options) { o.RecordCalls = true } }

// WithChunkRows bounds rows per SOAP message.
func WithChunkRows(n int) Option { return func(o *Options) { o.ChunkRows = n } }

// WithMessageLimit bounds SOAP message sizes on every server and client.
func WithMessageLimit(n int64) Option { return func(o *Options) { o.MessageLimit = n } }

// WithMatchColumns adds _matchRA/_matchDec/_logLikelihood/_nObs to
// cross-match results.
func WithMatchColumns() Option { return func(o *Options) { o.IncludeMatchColumns = true } }

// WithCallTimeout bounds every portal→node SOAP call end to end.
func WithCallTimeout(d time.Duration) Option { return func(o *Options) { o.CallTimeout = d } }

// WithParallelism bounds the worker pool each chain step partitions its
// tuples across. Results are bit-identical at every setting.
func WithParallelism(n int) Option { return func(o *Options) { o.Parallelism = n } }

// WithCodec selects the SOAP wire codec for every server and client in
// the federation.
func WithCodec(c Codec) Option { return func(o *Options) { o.Codec = c } }

// WithAdmission configures every node's step-execution admission gate.
func WithAdmission(a Admission) Option { return func(o *Options) { o.Admission = a } }

// WithPlanCacheSize bounds the Portal's compiled-plan cache.
func WithPlanCacheSize(n int) Option { return func(o *Options) { o.PlanCacheSize = n } }

// WithOverloadRetries sets how often clients retry a query shed by an
// overloaded node (negative = never retry).
func WithOverloadRetries(n int) Option { return func(o *Options) { o.OverloadRetries = n } }

// WithShards partitions every generated survey archive into n
// trixel-range shards, each served by its own SkyNode. Results are
// bit-identical at every shard count.
func WithShards(n int) Option { return func(o *Options) { o.Shards = n } }

// WithReplicas adds n read-replica followers per shard; queries prefer
// followers and fail over between replicas.
func WithReplicas(n int) Option { return func(o *Options) { o.Replicas = n } }

// WithCountProbeOrder reverts chain ordering to the pure count-star rule
// of §5.3.
func WithCountProbeOrder() Option { return func(o *Options) { o.CountProbeOrder = true } }

// WithAdaptiveReorder lets chain nodes re-order the downstream suffix
// when live estimates diverge from the plan's.
func WithAdaptiveReorder() Option { return func(o *Options) { o.AdaptiveReorder = true } }

// WithPortalEvents installs a portal trace-event sink.
func WithPortalEvents(fn func(kind, detail string)) Option {
	return func(o *Options) { o.PortalEvents = fn }
}

// WithNodeEvents installs a node trace-event sink.
func WithNodeEvents(fn func(node, kind, detail string)) Option {
	return func(o *Options) { o.NodeEvents = fn }
}

// DialOption configures the client returned by Dial.
type DialOption func(*Client)

// WithHTTPClient makes the client use the given *http.Client — including
// its Timeout — for every call.
func WithHTTPClient(h *http.Client) DialOption {
	return func(c *Client) { c.SOAP.HTTPClient = h }
}

// WithClientCodec selects the client's wire codec (CodecXML keeps the
// paper-faithful XML wire; the default negotiates binary columnar).
func WithClientCodec(codec Codec) DialOption {
	return func(c *Client) { c.SOAP.Codec = codec }
}

// WithClientTimeout bounds each call end to end (ignored when
// WithHTTPClient is also given — the http.Client owns deadlines then).
func WithClientTimeout(d time.Duration) DialOption {
	return func(c *Client) { c.SOAP.Timeout = d }
}

// WithClientRetries sets how many times an overload-shed call is retried
// (negative = never).
func WithClientRetries(n int) DialOption {
	return func(c *Client) { c.SOAP.MaxRetries = n }
}
