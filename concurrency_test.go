package skyquery

// End-to-end concurrency coverage for the parallel chain executor: many
// simultaneous Portal.Query calls against one federation must produce
// exactly the results of serial execution, and the executor itself must be
// deterministic (row-for-row, including order) at every Parallelism
// setting. Both tests are meaningful mainly under the race detector:
//
//	go test -race -run 'Concurrent|Determinism' .

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"skyquery/internal/value"
)

// concurrencyQueries mixes the three workload shapes the Portal serves:
// a mandatory-only cross match, a drop-out cross match, and a
// single-archive pass-through query.
var concurrencyQueries = []string{
	`SELECT O.object_id, T.object_id, P.object_id
	 FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	 WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5
	 AND O.type = 'GALAXY' AND (O.flux - T.flux) > 2`,

	`SELECT O.object_id, T.object_id
	 FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	 WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, !P) < 3.5
	 AND O.type = 'GALAXY'`,

	`SELECT TOP 50 O.object_id, O.flux
	 FROM SDSS:PhotoObject O
	 WHERE AREA(185.0, -0.5, 900) AND O.type = 'GALAXY'`,
}

// diffDataSets returns a description of the first difference between two
// result sets (schema, row count, or cell), or "" when they are identical
// including row order.
func diffDataSets(want, got *Result) string {
	if !want.SchemaEqual(got) {
		return fmt.Sprintf("schema %v != %v", got.Columns, want.Columns)
	}
	if got.NumRows() != want.NumRows() {
		return fmt.Sprintf("rows = %d, want %d", got.NumRows(), want.NumRows())
	}
	for i := range want.Rows {
		for j := range want.Rows[i] {
			if !value.Equal(want.Rows[i][j], got.Rows[i][j]) {
				return fmt.Sprintf("row %d col %d = %v, want %v", i, j, got.Rows[i][j], want.Rows[i][j])
			}
		}
	}
	return ""
}

// TestConcurrentQueriesMatchSerial launches one in-process federation and
// fires many concurrent Portal.Query calls, asserting every response is
// identical to the serial answer.
func TestConcurrentQueriesMatchSerial(t *testing.T) {
	f := launch(t, Options{Bodies: 500})

	want := make([]*Result, len(concurrencyQueries))
	for i, q := range concurrencyQueries {
		res, err := f.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("serial query %d: %v", i, err)
		}
		want[i] = res
	}

	const clients = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, clients*rounds*len(concurrencyQueries))
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Stagger which query each client starts with so distinct
				// shapes overlap in flight.
				for i := range concurrencyQueries {
					q := (c + r + i) % len(concurrencyQueries)
					res, err := f.Query(context.Background(), concurrencyQueries[q])
					if err != nil {
						errs <- fmt.Errorf("client %d query %d: %v", c, q, err)
						return
					}
					if d := diffDataSets(want[q], res); d != "" {
						errs <- fmt.Errorf("client %d query %d: %s", c, q, d)
						return
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestParallelExecutorDeterminism asserts the parallel chain executor is
// bit-identical to the sequential one: federations over the same seeded
// surveys, differing only in Parallelism, return row-for-row identical
// results (including order) for every workload shape.
func TestParallelExecutorDeterminism(t *testing.T) {
	opts := func(parallelism int) Options {
		return Options{Bodies: 500, Seed: 7, Parallelism: parallelism}
	}
	serial := launch(t, opts(1))
	want := make([]*Result, len(concurrencyQueries))
	for i, q := range concurrencyQueries {
		res, err := serial.Query(context.Background(), q)
		if err != nil {
			t.Fatalf("sequential query %d: %v", i, err)
		}
		want[i] = res
		if i < 2 && res.NumRows() == 0 {
			t.Fatalf("query %d matched nothing; the comparison would be vacuous", i)
		}
	}

	for _, parallelism := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("parallelism-%d", parallelism), func(t *testing.T) {
			f := launch(t, opts(parallelism))
			for i, q := range concurrencyQueries {
				res, err := f.Query(context.Background(), q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if d := diffDataSets(want[i], res); d != "" {
					t.Errorf("query %d: parallel output differs from sequential: %s", i, d)
				}
			}
		})
	}
}
