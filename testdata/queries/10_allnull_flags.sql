SELECT O.object_id FROM SDSS:PhotoObject O WHERE O.flags > 0
