SELECT O.object_id FROM SDSS:PhotoObject O WHERE O.type = 'NOSUCHTYPE'
