SELECT O.object_id, COALESCE(O.flux, -1) + 1 AS fp1, O.flux / 2 AS half
FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5 AND O.object_id % 2 = 0
ORDER BY O.object_id
