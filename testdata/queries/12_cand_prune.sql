SELECT O.object_id, T.object_id, O.flux
FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
AND O.object_id <= 120 AND T.flux > 1.0
ORDER BY O.object_id, T.object_id
