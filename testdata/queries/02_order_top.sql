SELECT TOP 10 O.object_id, O.flux + T.flux AS total, UPPER(O.type) AS ty
FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5 AND O.flux > 5
ORDER BY O.flux + T.flux DESC, O.object_id
