SELECT TOP 1 O.object_id FROM SDSS:PhotoObject O WHERE O.flux > 0
