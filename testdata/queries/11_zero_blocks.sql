SELECT O.object_id, O.flux FROM SDSS:PhotoObject O WHERE O.flux > 100000.0
