SELECT O.object_id, T.object_id
FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T
WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T) < 3.5
AND ABS(O.flux - T.flux) < 50 AND O.type LIKE 'GAL%'
