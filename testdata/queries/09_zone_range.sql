SELECT O.object_id, O.flux
FROM SDSS:PhotoObject O
WHERE O.object_id >= 50 AND O.object_id <= 80
ORDER BY O.object_id
