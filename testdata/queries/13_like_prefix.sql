SELECT TOP 20 O.object_id, O.type
FROM SDSS:PhotoObject O
WHERE O.type LIKE 'GAL%' AND O.flux > 20
ORDER BY O.object_id
