SELECT O.object_id, T.object_id
FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, !P) < 3.5
AND O.type = 'GALAXY'
