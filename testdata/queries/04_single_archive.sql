SELECT TOP 15 O.object_id, O.flux, LOWER(O.type) AS ty
FROM SDSS:PhotoObject O
WHERE O.flux BETWEEN 10 AND 80 AND O.type IN ('GALAXY', 'STAR')
ORDER BY O.flux DESC, O.object_id
