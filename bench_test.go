package skyquery

// Benchmarks regenerating the paper's evaluation artifacts, one per table
// and figure (see DESIGN.md's per-experiment index and EXPERIMENTS.md for
// recorded outputs). The cmd/skyquery-bench tool prints the same
// experiments as human-readable tables; these testing.B forms measure the
// steady-state cost of each workload and report bytes-on-wire metrics.
//
//	go test -bench=. -benchmem

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"

	"skyquery/internal/dataset"
	"skyquery/internal/plan"
	"skyquery/internal/skynode"
	"skyquery/internal/soap"
	"skyquery/internal/sphere"
	"skyquery/internal/storage"
	"skyquery/internal/value"
	"skyquery/internal/xmatch"
)

const benchQuery = `
	SELECT O.object_id, T.object_id, P.object_id
	FROM SDSS:PhotoObject O, TWOMASS:PhotoObject T, FIRST:PhotoObject P
	WHERE AREA(185.0, -0.5, 900) AND XMATCH(O, T, P) < 3.5
	AND O.type = 'GALAXY' AND (O.flux - T.flux) > 2`

// benchFed lazily builds one shared federation for the query benchmarks.
var benchFed = struct {
	once sync.Once
	fed  *Federation
	err  error
}{}

func sharedFed(b *testing.B) *Federation {
	b.Helper()
	benchFed.once.Do(func() {
		benchFed.fed, benchFed.err = Launch(Options{Bodies: 2000})
	})
	if benchFed.err != nil {
		b.Fatal(benchFed.err)
	}
	return benchFed.fed
}

// BenchmarkF1_FederationEndToEnd measures the Figure 1 round trip: a
// client query through the Portal's SOAP service, the count-star fan-out,
// the three-node daisy chain, and the relayed result.
func BenchmarkF1_FederationEndToEnd(b *testing.B) {
	fed := sharedFed(b)
	c := fed.Client()
	fed.Transport.Reset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Query(context.Background(), benchQuery)
		if err != nil {
			b.Fatal(err)
		}
		if res.NumRows() == 0 {
			b.Fatal("no matches")
		}
	}
	b.StopTimer()
	stats := fed.Transport.Stats()
	b.ReportMetric(float64(stats.Total())/float64(b.N), "wire-bytes/op")
}

// BenchmarkF2_XMatchSemantics measures the Figure 2 selection logic (the
// accumulator fold plus drop-out veto) on in-memory observations.
func BenchmarkF2_XMatchSemantics(b *testing.B) {
	mk := func(sigma float64, offRA, offDec [2]float64) xmatch.ArchiveSet {
		return xmatch.ArchiveSet{Sigma: sigma, Obs: []xmatch.Observation{
			{Pos: sphere.FromRaDec(184.999+offRA[0], -0.499+offDec[0]), Key: 1},
			{Pos: sphere.FromRaDec(185.001+offRA[1], -0.501+offDec[1]), Key: 2},
		}}
	}
	o := mk(0.10, [2]float64{0, 0}, [2]float64{0, 0})
	t := mk(0.15, [2]float64{Arcsec(0.10), -Arcsec(0.12)}, [2]float64{0, 0})
	p := mk(0.20, [2]float64{0, 0}, [2]float64{Arcsec(0.15), Arcsec(30)})
	pDrop := p
	pDrop.DropOut = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := xmatch.BruteForce([]xmatch.ArchiveSet{o, t, p}, 3.5); len(got) != 1 {
			b.Fatalf("mandatory matches = %d", len(got))
		}
		if got := xmatch.BruteForce([]xmatch.ArchiveSet{o, t, pDrop}, 3.5); len(got) != 1 {
			b.Fatalf("drop-out matches = %d", len(got))
		}
	}
}

// BenchmarkF3_ExecutionTrace measures the full Figure 3 pipeline with
// trace events enabled (the tracing overhead is part of the measurement).
func BenchmarkF3_ExecutionTrace(b *testing.B) {
	var mu sync.Mutex
	events := 0
	fed, err := Launch(Options{
		Bodies:       1200,
		PortalEvents: func(string, string) { mu.Lock(); events++; mu.Unlock() },
		NodeEvents:   func(string, string, string) { mu.Lock(); events++; mu.Unlock() },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fed.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fed.Query(context.Background(), benchQuery); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if events == 0 {
		b.Fatal("no trace events")
	}
}

// planOrderingFixture builds the skewed federation and base plan once.
var planFixture = struct {
	once sync.Once
	fed  *Federation
	base *Plan
	err  error
}{}

func orderingFixture(b *testing.B) (*Federation, *Plan) {
	b.Helper()
	planFixture.once.Do(func() {
		planFixture.fed, planFixture.err = Launch(Options{
			Bodies: 3000,
			Surveys: []SurveySpec{
				{Name: "DEEP", SigmaArcsec: 0.1, Completeness: 0.98, Seed: 31},
				{Name: "MID", SigmaArcsec: 0.2, Completeness: 0.55, Seed: 32},
				{Name: "SPARSE", SigmaArcsec: 0.4, Completeness: 0.12, Seed: 33},
			},
		})
		if planFixture.err != nil {
			return
		}
		planFixture.base, planFixture.err = planFixture.fed.BuildPlan(context.Background(), `
			SELECT d.object_id, m.object_id, s.object_id
			FROM DEEP:PhotoObject d, MID:PhotoObject m, SPARSE:PhotoObject s
			WHERE AREA(185.0, -0.5, 900) AND XMATCH(d, m, s) < 3.5`)
	})
	if planFixture.err != nil {
		b.Fatal(planFixture.err)
	}
	return planFixture.fed, planFixture.base
}

// runPlanData executes a plan by calling the first step's CrossMatch
// service and returns the tuple set that flowed back.
func runPlanData(b *testing.B, fed *Federation, p *Plan) *dataset.DataSet {
	b.Helper()
	c := &soap.Client{HTTPClient: fed.Transport.Client()}
	var first soap.ChunkedData
	if err := c.Call(context.Background(), p.Steps[0].Endpoint, skynode.ActionCrossMatch,
		&skynode.CrossMatchRequest{Plan: *p}, &first); err != nil {
		b.Fatal(err)
	}
	ds, err := soap.FetchAll(context.Background(), c, p.Steps[0].Endpoint, &first)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// runPlan executes a plan and returns its row count.
func runPlan(b *testing.B, fed *Federation, p *Plan) int {
	b.Helper()
	return runPlanData(b, fed, p).NumRows()
}

// BenchmarkC1_PlanOrdering measures the chain under the optimizer's
// count-star order and under the worst order, reporting bytes shipped.
func BenchmarkC1_PlanOrdering(b *testing.B) {
	fed, base := orderingFixture(b)
	run := func(b *testing.B, permute func([]plan.Step) []plan.Step) {
		p := *base
		steps := append([]plan.Step(nil), base.Steps...)
		p.Steps = permute(steps)
		fed.Transport.Reset()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if n := runPlan(b, fed, &p); n == 0 {
				b.Fatal("no matches")
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(fed.Transport.Stats().Total())/float64(b.N), "wire-bytes/op")
	}
	b.Run("count-star-order", func(b *testing.B) {
		run(b, func(s []plan.Step) []plan.Step { return s })
	})
	b.Run("worst-order", func(b *testing.B) {
		run(b, func(s []plan.Step) []plan.Step {
			for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
				s[i], s[j] = s[j], s[i]
			}
			return s
		})
	})
}

// BenchmarkC2_Chunking measures chunked transfer of a large result at
// several chunk sizes (the monolithic case fails the parser limit and is
// exercised in tests, not benchmarked).
func BenchmarkC2_Chunking(b *testing.B) {
	const rows = 20000
	ds := dataset.New(
		dataset.Column{Name: "object_id", Type: value.IntType},
		dataset.Column{Name: "ra", Type: value.FloatType},
	)
	for i := 0; i < rows; i++ {
		ds.Append([]value.Value{value.Int(int64(i)), value.Float(float64(i) / 7)})
	}
	for _, chunkRows := range []int{500, 2000, 10000} {
		b.Run(fmt.Sprintf("chunk-%d", chunkRows), func(b *testing.B) {
			var cs soap.ChunkStore
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				first := cs.Respond(ds, chunkRows)
				chunks := []*dataset.DataSet{first.Data}
				token := first.Token
				for token != "" {
					next, err := cs.Fetch(token)
					if err != nil {
						b.Fatal(err)
					}
					chunks = append(chunks, next.Data)
					token = next.Token
				}
				got, err := dataset.Join(chunks)
				if err != nil || got.NumRows() != rows {
					b.Fatalf("join: %v rows=%d", err, got.NumRows())
				}
			}
		})
	}
}

// htmFixture is the 200k-object table for the range-search benchmarks.
var htmFixture = struct {
	once sync.Once
	tab  *storage.Table
	err  error
}{}

func htmTable(b *testing.B) *storage.Table {
	b.Helper()
	htmFixture.once.Do(func() {
		tab, err := storage.NewTable("PhotoObject", storage.Schema{
			{Name: "id", Type: value.IntType},
			{Name: "ra", Type: value.FloatType},
			{Name: "dec", Type: value.FloatType},
		})
		if err != nil {
			htmFixture.err = err
			return
		}
		f := GenerateField(NewCap(0, 0, 180), 200000, 0.3, 99)
		for _, body := range f.Bodies {
			ra, dec := body.Pos.RaDec()
			if err := tab.Append(value.Int(body.ID), value.Float(ra), value.Float(dec)); err != nil {
				htmFixture.err = err
				return
			}
		}
		htmFixture.err = tab.EnableSpatial(storage.SpatialConfig{RACol: "ra", DecCol: "dec"})
		htmFixture.tab = tab
	})
	if htmFixture.err != nil {
		b.Fatal(htmFixture.err)
	}
	return htmFixture.tab
}

// BenchmarkC3_HTMRange measures HTM-indexed range search vs full scan.
func BenchmarkC3_HTMRange(b *testing.B) {
	tab := htmTable(b)
	for _, radius := range []float64{Arcsec(60), 1, 10} {
		c := NewCap(180, 0, radius)
		b.Run(fmt.Sprintf("htm-r%.4gdeg", radius), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				if err := tab.SearchCap(c, func(int) bool { n++; return true }); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("scan-r%.4gdeg", radius), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				n := 0
				tab.Scan(func(row int) bool {
					ra, _ := tab.Value(row, 1).AsFloat()
					dec, _ := tab.Value(row, 2).AsFloat()
					if c.Contains(sphere.FromRaDec(ra, dec)) {
						n++
					}
					return true
				})
			}
		})
	}
}

// soapFixture is the 10k-row data set for serialization benchmarks.
var soapFixture = struct {
	once sync.Once
	ds   *dataset.DataSet
	xml  []byte
	bin  []byte
}{}

func overheadFixture(b *testing.B) *dataset.DataSet {
	b.Helper()
	soapFixture.once.Do(func() {
		ds := dataset.New(
			dataset.Column{Name: "object_id", Type: value.IntType},
			dataset.Column{Name: "ra", Type: value.FloatType},
			dataset.Column{Name: "dec", Type: value.FloatType},
			dataset.Column{Name: "type", Type: value.StringType},
		)
		for i := 0; i < 10000; i++ {
			ds.Append([]value.Value{
				value.Int(int64(i)), value.Float(float64(i) * 0.036),
				value.Float(float64(i%180) - 90), value.String("GALAXY"),
			})
		}
		var xmlBuf, binBuf bytes.Buffer
		ds.EncodeXML(&xmlBuf)
		ds.EncodeBinary(&binBuf)
		soapFixture.ds = ds
		soapFixture.xml = xmlBuf.Bytes()
		soapFixture.bin = binBuf.Bytes()
	})
	return soapFixture.ds
}

// BenchmarkC4_SOAPOverhead measures XML vs binary encode/decode of a
// 10k-row result set.
func BenchmarkC4_SOAPOverhead(b *testing.B) {
	ds := overheadFixture(b)
	b.Run("xml-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ds.EncodeXML(&buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	b.Run("xml-decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(soapFixture.xml)))
		for i := 0; i < b.N; i++ {
			if _, err := dataset.DecodeXML(bytes.NewReader(soapFixture.xml)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("binary-encode", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := ds.EncodeBinary(&buf); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(buf.Len()))
		}
	})
	b.Run("binary-decode", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(soapFixture.bin)))
		for i := 0; i < b.N; i++ {
			if _, err := dataset.DecodeBinary(bytes.NewReader(soapFixture.bin)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkC5_ChainVsPull measures the daisy chain against the
// pull-to-portal baseline on the same query, reporting wire bytes.
func BenchmarkC5_ChainVsPull(b *testing.B) {
	fed := sharedFed(b)
	b.Run("chain", func(b *testing.B) {
		fed.Transport.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Query(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fed.Transport.Stats().Total())/float64(b.N), "wire-bytes/op")
	})
	b.Run("pull", func(b *testing.B) {
		fed.Transport.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := fed.PullQuery(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fed.Transport.Stats().Total())/float64(b.N), "wire-bytes/op")
	})
}

// parallelChainFixture is the heavier federation for the parallel-chain
// worker sweep: the Figure 3 three-survey pipeline, enough bodies that the
// chain-step compute (predicate evaluation, HTM searches, accumulator
// folds) dominates the SOAP plumbing.
var parallelChainFixture = struct {
	once sync.Once
	fed  *Federation
	base *Plan
	err  error
}{}

func parallelFixture(b *testing.B) (*Federation, *Plan) {
	b.Helper()
	parallelChainFixture.once.Do(func() {
		// Nodes are launched with Parallelism unset so each plan's hint
		// (set per sub-benchmark below) picks the worker count. A dense
		// field makes the per-tuple search-and-evaluate work (which
		// parallelizes) dominate the per-tuple SOAP serialization (which
		// does not); large chunks cut fetch round-trips.
		parallelChainFixture.fed, parallelChainFixture.err = Launch(Options{Bodies: 24000, ChunkRows: 50000})
		if parallelChainFixture.err != nil {
			return
		}
		parallelChainFixture.base, parallelChainFixture.err = parallelChainFixture.fed.BuildPlan(context.Background(), benchQuery)
	})
	if parallelChainFixture.err != nil {
		b.Fatal(parallelChainFixture.err)
	}
	return parallelChainFixture.fed, parallelChainFixture.base
}

// BenchmarkC5_ParallelChain sweeps the chain-step worker count over the
// Figure 3 pipeline via the plan's Parallelism hint. Before timing, each
// setting's output is verified row-for-row identical (including order) to
// the sequential run, so the speedup is measured on provably equivalent
// work. The sweep needs real cores: on a single-CPU host every setting
// runs in the same wall time (which bounds the executor's scheduling
// overhead — it should be within noise of workers-1).
func BenchmarkC5_ParallelChain(b *testing.B) {
	fed, base := parallelFixture(b)
	seqPlan := *base
	seqPlan.Parallelism = 1
	seq := runPlanData(b, fed, &seqPlan)
	if seq.NumRows() == 0 {
		b.Fatal("no matches; the sweep would measure nothing")
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			p := *base
			p.Parallelism = workers
			got := runPlanData(b, fed, &p)
			if d := diffDataSets(seq, got); d != "" {
				b.Fatalf("workers=%d output differs from sequential: %s", workers, d)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if n := runPlan(b, fed, &p); n != seq.NumRows() {
					b.Fatalf("rows = %d, want %d", n, seq.NumRows())
				}
			}
		})
	}
}

// BenchmarkC6_Scaling measures query cost as archives are added.
func BenchmarkC6_Scaling(b *testing.B) {
	for n := 2; n <= 4; n++ {
		b.Run(fmt.Sprintf("archives-%d", n), func(b *testing.B) {
			var surveys []SurveySpec
			from, aliases := "", ""
			for i := 0; i < n; i++ {
				name := fmt.Sprintf("S%d", i+1)
				surveys = append(surveys, SurveySpec{
					Name: name, SigmaArcsec: 0.1 + 0.1*float64(i),
					Completeness: 0.9, Seed: int64(41 + i),
				})
				alias := fmt.Sprintf("a%d", i+1)
				if i > 0 {
					from += ", "
					aliases += ", "
				}
				from += fmt.Sprintf("%s:PhotoObject %s", name, alias)
				aliases += alias
			}
			fed, err := Launch(Options{Bodies: 1500, Surveys: surveys})
			if err != nil {
				b.Fatal(err)
			}
			defer fed.Close()
			sql := fmt.Sprintf(`SELECT a1.object_id FROM %s
				WHERE AREA(185.0, -0.5, 900) AND XMATCH(%s) < 3.5`, from, aliases)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fed.Query(context.Background(), sql); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkC7_PerfQueries isolates the count-star planning phase from the
// full cross match it optimizes.
func BenchmarkC7_PerfQueries(b *testing.B) {
	fed := sharedFed(b)
	b.Run("plan-only", func(b *testing.B) {
		fed.Transport.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := fed.BuildPlan(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fed.Transport.Stats().Total())/float64(b.N), "wire-bytes/op")
	})
	b.Run("full-query", func(b *testing.B) {
		fed.Transport.Reset()
		for i := 0; i < b.N; i++ {
			if _, err := fed.Query(context.Background(), benchQuery); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(fed.Transport.Stats().Total())/float64(b.N), "wire-bytes/op")
	})
}
